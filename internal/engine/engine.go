// Package engine simulates the DRM distribution chain the paper assumes
// around its validator: an owner grants redistribution licenses to
// distributors; distributors issue usage (and sub-redistribution) licenses
// to consumers; a validation authority instance-validates every issuance,
// logs its belongs-to set and count, and audits the aggregate constraints
// offline (§1–§2).
//
// A Distributor manages one (content, permission) corpus:
//
//   - instance validation uses an R-tree over the corpus rectangles
//     (internal/rtree);
//   - in ModeOnline every issuance is additionally aggregate-checked
//     immediately against the incrementally maintained headroom cache
//     (internal/headroom), so violations are rejected at issue time
//     (loss-free, Example 1's desired behaviour) without walking the
//     validation tree — admission is a slack lookup plus an in-place
//     decrement, and batch audits cross-check the cache afterwards;
//   - in ModeOffline issuances are only logged — the paper's operating
//     point, where "violation of aggregate constraints is not a frequent
//     event" and auditing happens in batch via the geometric validator.
//
// Issue, Audit, Stats, and the headroom queries are safe for concurrent
// use; corpus mutations (AddRedistribution, TopUp) require external
// exclusion against in-flight issuances, matching how drmserver holds
// its corpus write lock.
//
// A Network is a directory of distributors keyed by (distributor, content,
// permission), so multi-party scenarios read naturally in the examples.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/geometry"
	"repro/internal/headroom"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/rtree"
	"repro/internal/slo"
	"repro/internal/trace"
)

// Hitters, when non-nil, receives per-issuance heavy-hitter attribution
// (entry = distributor name, group = overlap component) for request
// counts, cumulative latency, and headroom rejections. Wired by the
// server alongside InstrumentAll; nil (the default) costs one pointer
// compare per issuance.
var Hitters *slo.Hitters

// Mode selects when aggregate validation happens.
type Mode int

const (
	// ModeOffline logs issuances without aggregate checks; call Audit to
	// validate in batch (the paper's setting).
	ModeOffline Mode = iota
	// ModeOnline rejects issuances that would violate any validation
	// equation, using Headroom over a live validation tree.
	ModeOnline
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOffline:
		return "offline"
	case ModeOnline:
		return "online"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sentinel errors distinguish the two rejection classes. They are typed
// with drmerr kinds, so errors.Is against the sentinel and
// drmerr.KindOf both classify a rejection.
var (
	// ErrInstanceInvalid marks an issuance whose rectangle is not
	// contained in any redistribution license (like L_U^2 in fig 2).
	ErrInstanceInvalid = drmerr.Sentinel(drmerr.KindInstanceInvalid,
		"engine: issuance fails instance-based validation")
	// ErrAggregateExhausted marks an online-mode issuance that would
	// violate a validation equation.
	ErrAggregateExhausted = drmerr.Sentinel(drmerr.KindViolation,
		"engine: issuance would violate an aggregate constraint")
)

// Stats counts a distributor's issuance and lifecycle outcomes.
type Stats struct {
	// Issued counts accepted issuances; IssuedCounts sums their counts.
	Issued       int
	IssuedCounts int64
	// RejectedInstance and RejectedAggregate count the two failure modes.
	RejectedInstance  int
	RejectedAggregate int
	// Revoked/Expired/Transferred count accepted lifecycle operations;
	// the *Counts fields sum the permission counts they moved.
	Revoked           int
	RevokedCounts     int64
	Expired           int
	ExpiredCounts     int64
	Transferred       int
	TransferredCounts int64
}

// Distributor manages one (content, permission) license corpus and its
// issuance log. Issuance, audits, stats, and headroom queries are safe
// for concurrent use (given a concurrency-safe log store — Mem and the
// WAL both are); corpus mutations require external exclusion.
type Distributor struct {
	name    string
	mode    Mode
	corpus  *license.Corpus
	grouper *overlap.Grouper
	index   *rtree.Tree
	log     logstore.Store

	// mu guards the cache pointer and its freshness flags. cacheDirty
	// marks a corpus change (rebuild from the cache's retained counts —
	// no log replay); cacheStale marks log appends the cache never saw
	// (offline issuance after a headroom query — full replay). Building
	// lazily keeps the catalog-reopen path — corpus loaded license by
	// license over a pre-existing log — to a single warm-up replay.
	mu         sync.Mutex
	cache      *headroom.Cache
	cacheDirty bool
	cacheStale bool

	// sweepMu serialises expiry sweeps: the schedule is read from a
	// ledger snapshot, so two concurrent sweeps over the same snapshot
	// would both try to debit the same due buckets (the store would
	// refuse the second as unsound — correct but noisy).
	sweepMu sync.Mutex

	// transferCap bounds the cumulative per-set transfer total (0 =
	// unlimited). Policy, not ledger soundness: enforced only on the
	// online path, against totals that survive log compaction.
	transferCap atomic.Int64

	// readOnly gates every mutation while the distributor serves a
	// replication mirror; see replica.go.
	readOnly atomic.Bool

	issued            atomic.Int64
	issuedCounts      atomic.Int64
	rejectedInstance  atomic.Int64
	rejectedAggregate atomic.Int64
	revoked           atomic.Int64
	revokedCounts     atomic.Int64
	expired           atomic.Int64
	expiredCounts     atomic.Int64
	transferred       atomic.Int64
	transferredCounts atomic.Int64
	seq               atomic.Int64
}

// NewDistributor creates a distributor over the schema writing to the given
// log store (NewMem is a fine default).
func NewDistributor(name string, schema *geometry.Schema, mode Mode, log logstore.Store) *Distributor {
	corpus := license.NewCorpus(schema)
	return &Distributor{
		name:    name,
		mode:    mode,
		corpus:  corpus,
		grouper: overlap.NewGrouper(corpus),
		index:   rtree.New(schema, rtree.DefaultMaxEntries),
		log:     log,
	}
}

// Name returns the distributor's name.
func (d *Distributor) Name() string { return d.name }

// Corpus exposes the redistribution-license corpus (read-only use).
func (d *Distributor) Corpus() *license.Corpus { return d.corpus }

// Stats returns issuance counters. All counters are maintained
// atomically, so Stats is safe (and consistent per counter) under
// concurrent issuance.
func (d *Distributor) Stats() Stats {
	return Stats{
		Issued:            int(d.issued.Load()),
		IssuedCounts:      d.issuedCounts.Load(),
		RejectedInstance:  int(d.rejectedInstance.Load()),
		RejectedAggregate: int(d.rejectedAggregate.Load()),
		Revoked:           int(d.revoked.Load()),
		RevokedCounts:     d.revokedCounts.Load(),
		Expired:           int(d.expired.Load()),
		ExpiredCounts:     d.expiredCounts.Load(),
		Transferred:       int(d.transferred.Load()),
		TransferredCounts: d.transferredCounts.Load(),
	}
}

// NumGroups returns the current number of disconnected license groups,
// maintained incrementally as licenses arrive.
func (d *Distributor) NumGroups() int { return d.grouper.NumGroups() }

// AddRedistribution registers a redistribution license received from
// upstream (the owner or a parent distributor) and returns its corpus
// index. An existing headroom cache is re-sized to the new corpus (and
// any merged groups) at the next admission, from its own retained
// counts — the log is never replayed again.
func (d *Distributor) AddRedistribution(l *license.License) (int, error) {
	idx, err := d.grouper.Add(l) // validates kind/schema and updates groups
	if err != nil {
		return 0, err
	}
	if err := d.index.Insert(l.Rect, idx); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.cacheDirty = true
	d.mu.Unlock()
	return idx, nil
}

// ensureCache returns a headroom cache consistent with the corpus and
// the log, building or refreshing it as needed. The first build replays
// the log (for a WAL-backed store that is snapshot + tail — the
// recovery warm-up); corpus changes rebuild from the cache's retained
// counts without touching the log.
func (d *Distributor) ensureCache(ctx context.Context) (*headroom.Cache, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cache != nil && !d.cacheDirty && !d.cacheStale {
		return d.cache, nil
	}
	if d.cache == nil || d.cacheStale {
		c, err := headroom.Build(ctx, d.grouper.Grouping(), d.corpus.Aggregates(), d.log)
		if err != nil {
			return nil, err
		}
		d.cache = c
	} else if err := d.cache.Rebuild(ctx, d.grouper.Grouping(), d.corpus.Aggregates()); err != nil {
		return nil, err
	}
	d.cacheDirty, d.cacheStale = false, false
	return d.cache, nil
}

// WarmHeadroom builds the headroom cache eagerly — the recovery hook:
// catalog reopen calls it right after replaying corpus and WAL so the
// first issuance pays no warm-up.
func (d *Distributor) WarmHeadroom(ctx context.Context) error {
	_, err := d.ensureCache(ctx)
	return err
}

// HeadroomContext returns the remaining aggregate budget for an
// issuance against set, served from the cache.
func (d *Distributor) HeadroomContext(ctx context.Context, set bitset.Mask) (int64, error) {
	cache, err := d.ensureCache(ctx)
	if err != nil {
		return 0, err
	}
	return cache.Headroom(set)
}

// HeadroomSummaries returns the cache's per-group min-slack summaries —
// the payload of drmserver's /v1/headroom debug endpoint.
func (d *Distributor) HeadroomSummaries(ctx context.Context) ([]headroom.GroupSummary, error) {
	cache, err := d.ensureCache(ctx)
	if err != nil {
		return nil, err
	}
	return cache.Summaries(), nil
}

// HeadroomPending returns the number of admitted-but-unconfirmed cache
// reservations — zero when no cache has been built yet, and transiently
// non-zero between an admission and its log append confirming.
func (d *Distributor) HeadroomPending() int64 {
	d.mu.Lock()
	cache := d.cache
	d.mu.Unlock()
	if cache == nil {
		return 0
	}
	return cache.Pending()
}

// BelongsTo runs instance validation for a candidate rectangle and returns
// the belongs-to set as a mask (empty = instance-invalid).
func (d *Distributor) BelongsTo(rect geometry.Rect) bitset.Mask {
	var set bitset.Mask
	for _, j := range d.index.SearchContaining(rect) {
		set = set.With(j)
	}
	return set
}

// Issue processes one issuance request: a new license of the given kind
// with constraint rectangle rect and permission count. On success the
// issued license is returned and the issuance is logged. It is
// IssueContext with a background context.
func (d *Distributor) Issue(kind license.Kind, rect geometry.Rect, count int64) (*license.License, error) {
	return d.IssueContext(context.Background(), kind, rect, count)
}

// IssueContext is Issue under a context: cancellation is checked before
// the instance search and again before the (potentially log-replaying)
// online aggregate check, so an abandoned request never appends to the
// log. A cancelled issuance returns a KindCancelled error.
func (d *Distributor) IssueContext(ctx context.Context, kind license.Kind, rect geometry.Rect, count int64) (*license.License, error) {
	return d.issueTraced(ctx, kind, rect, count, 0)
}

// IssueTTLContext is IssueContext for a time-limited license: the
// issuance record carries expiry (Unix seconds), so the counts it grants
// are debited back automatically when ExpireSweep runs past that moment.
// Until then the issuance consumes headroom exactly like a plain one.
func (d *Distributor) IssueTTLContext(ctx context.Context, kind license.Kind, rect geometry.Rect, count int64, expiry int64) (*license.License, error) {
	if expiry <= 0 {
		return nil, drmerr.New(drmerr.KindInvalidInput, "engine.issue",
			"engine: non-positive expiry %d", expiry)
	}
	return d.issueTraced(ctx, kind, rect, count, expiry)
}

func (d *Distributor) issueTraced(ctx context.Context, kind license.Kind, rect geometry.Rect, count, expiry int64) (*license.License, error) {
	start := time.Now()
	ctx, isp := trace.Start(ctx, "engine.issue")
	lic, err := d.issueContext(ctx, kind, rect, count, expiry, start)
	if isp != nil {
		isp.SetAttr("distributor", d.name)
		isp.SetInt("count", count)
		isp.Fail(err)
		isp.End()
	}
	if M.IssueSeconds != nil {
		// The guard keeps the uninstrumented path from formatting a trace
		// ID it would throw away; with a registry wired, traced issuances
		// leave a bucket exemplar pointing at their trace.
		M.IssueSeconds.ObserveExemplar(time.Since(start).Seconds(), trace.IDFromContext(ctx))
	}
	return lic, err
}

// recordHitter attributes one decided issuance (accept or aggregate
// reject) to its entry and overlap group in the heavy-hitter sketches.
// The group label is derived from the set's first member via the cheap
// union-find root walk — no per-issuance map materialisation.
func (d *Distributor) recordHitter(set bitset.Mask, start time.Time, rejected bool) {
	h := Hitters
	if h == nil || set.Empty() {
		return
	}
	root := d.grouper.RootOf(set.Min())
	h.ObserveIssue(d.name, d.name+"#g"+strconv.Itoa(root), time.Since(start), rejected)
}

func (d *Distributor) issueContext(ctx context.Context, kind license.Kind, rect geometry.Rect, count, expiry int64, start time.Time) (*license.License, error) {
	if err := ctx.Err(); err != nil {
		return nil, drmerr.Wrap(drmerr.KindCancelled, "engine.issue", err)
	}
	if err := d.readOnlyErr("engine.issue"); err != nil {
		return nil, err
	}
	if d.corpus.Len() == 0 {
		return nil, fmt.Errorf("%w: distributor %s holds no redistribution licenses", ErrInstanceInvalid, d.name)
	}
	if count <= 0 {
		return nil, drmerr.New(drmerr.KindInvalidInput, "engine.issue", "engine: non-positive count %d", count)
	}
	_, bsp := trace.Start(ctx, "engine.instance")
	set := d.BelongsTo(rect)
	if bsp != nil {
		bsp.SetInt("set_size", int64(set.Len()))
		bsp.End()
	}
	if set.Empty() {
		d.rejectedInstance.Add(1)
		M.RejectedInstance.Inc()
		return nil, fmt.Errorf("%w: %s not contained in any redistribution license", ErrInstanceInvalid, rect)
	}
	rec := logstore.Record{Set: set, Count: count, Meta: logstore.Meta{Expiry: expiry}}
	if d.mode == ModeOnline {
		if err := ctx.Err(); err != nil {
			return nil, drmerr.Wrap(drmerr.KindCancelled, "engine.issue", err)
		}
		// The hot path: check the cached slack and reserve under the
		// group lock, append to the log, confirm. No tree walk, no
		// replay; a failed append releases the reservation.
		hctx, hsp := trace.Start(ctx, "engine.headroom")
		cache, err := d.ensureCache(hctx)
		var room int64
		var ok bool
		if err == nil {
			room, ok, err = cache.Admit(hctx, set, count)
		}
		if hsp != nil {
			if err == nil {
				hsp.SetInt("headroom", room)
			}
			hsp.Fail(err)
			hsp.End()
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			d.rejectedAggregate.Add(1)
			M.RejectedAggregate.Inc()
			d.recordHitter(set, start, true)
			return nil, fmt.Errorf("%w: requested %d, headroom %d for %v", ErrAggregateExhausted, count, room, set)
		}
		if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
			if rerr := cache.Release(set, count); rerr != nil {
				return nil, errors.Join(err, rerr)
			}
			return nil, err
		}
		cache.Confirm()
	} else {
		if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
			return nil, err
		}
		// An offline append behind an existing cache (built for headroom
		// queries) leaves it stale; the next query replays the log.
		d.mu.Lock()
		if d.cache != nil {
			d.cacheStale = true
		}
		d.mu.Unlock()
	}
	d.issued.Add(1)
	d.issuedCounts.Add(count)
	M.Issued.Inc()
	M.IssuedCounts.Add(count)
	d.recordHitter(set, start, false)
	seq := d.seq.Add(1)
	first := d.corpus.License(0)
	return &license.License{
		Name:       fmt.Sprintf("%s/U%d", d.name, seq),
		Kind:       kind,
		Content:    first.Content,
		Permission: first.Permission,
		Rect:       rect,
		Aggregate:  count,
	}, nil
}

// TopUp raises the budget of the redistribution license at corpus index i
// by extra — the remediation an owner applies when audits show a group
// running hot. Cached headroom reflects the new budget immediately: the
// affected slack entries are patched in place, not rebuilt.
func (d *Distributor) TopUp(i int, extra int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.corpus.TopUp(i, extra); err != nil {
		return err
	}
	if d.cache != nil && !d.cacheDirty && !d.cacheStale {
		return d.cache.TopUp(i, extra)
	}
	return nil
}

// Audit runs the geometric offline validator over the accumulated log with
// the given parallelism and returns its report together with the auditor
// (for gain/timings inspection). It is AuditContext with a background
// context.
func (d *Distributor) Audit(workers int) (core.Report, *core.Auditor, error) {
	return d.AuditContext(context.Background(), workers)
}

// AuditContext is Audit under a context: log replay, tree division, and
// the per-group equation walks all observe ctx. On deadline expiry the
// verified-so-far report and auditor are returned together with an error
// matching drmerr.ErrAuditIncomplete; a cancellation during preparation
// returns a KindCancelled error and no auditor.
func (d *Distributor) AuditContext(ctx context.Context, workers int) (core.Report, *core.Auditor, error) {
	start := time.Now()
	defer M.AuditSeconds.ObserveSince(start)
	ctx, asp := trace.Start(ctx, "engine.audit")
	rep, aud, err := d.auditContext(ctx, workers)
	if asp != nil {
		asp.SetAttr("distributor", d.name)
		asp.SetInt("workers", int64(workers))
		if err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
			asp.Fail(err)
		}
		asp.End()
	}
	return rep, aud, err
}

func (d *Distributor) auditContext(ctx context.Context, workers int) (core.Report, *core.Auditor, error) {
	aud, err := core.NewAuditorContext(ctx, d.corpus, d.log)
	if err != nil {
		return core.Report{}, nil, err
	}
	if workers > 1 {
		aud.Workers = workers
	}
	rep, err := aud.AuditContext(ctx)
	if err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
		return core.Report{}, nil, err
	}
	M.Audits.Inc()
	if err == nil {
		if verr := d.verifyCache(ctx, aud); verr != nil {
			return rep, aud, verr
		}
	}
	return rep, aud, err
}

// crossCheckSample bounds how many observed sets a completed audit
// re-derives headroom for when cross-checking the cache, and
// crossCheckMaxGroup skips the re-derivation for groups big enough that
// the 2^{N_k} recomputation would dominate the audit itself.
const (
	crossCheckSample   = 8
	crossCheckMaxGroup = 16
)

// verifyCache is the audit-as-verifier inversion: with admission served
// from the headroom cache, a completed audit's job includes proving the
// cache still matches the log it no longer replays per issuance. Two
// checks run: a structural pass (cache.Verify rebuilds the slack state
// from the log and diffs counts, tables, and minimums) and a semantic
// sample (the audit's own divided trees recompute headroom for a few
// observed sets and compare against the cached answers). Divergence
// surfaces as a KindHeadroomDivergence error and increments
// drm_headroom_divergence_total. Skipped — not an error — while
// admissions are in flight or the cache is out of date with the corpus.
func (d *Distributor) verifyCache(ctx context.Context, aud *core.Auditor) error {
	d.mu.Lock()
	cache := d.cache
	fresh := cache != nil && !d.cacheDirty && !d.cacheStale
	d.mu.Unlock()
	if !fresh {
		return nil
	}
	res, err := cache.Verify(ctx, d.log)
	if err != nil || res.Skipped {
		return err
	}
	for _, set := range cache.SampleSets(crossCheckSample) {
		if k := aud.Grouping().GroupOf(set.Min()); k >= 0 &&
			aud.Grouping().Groups[k].Size > crossCheckMaxGroup {
			continue
		}
		want, err := aud.Headroom(set)
		if err != nil {
			return err
		}
		got, err := cache.Headroom(set)
		if err != nil {
			return err
		}
		if got != want {
			headroom.M.Divergence.Inc()
			return drmerr.New(drmerr.KindHeadroomDivergence, "engine.audit",
				"engine: cached headroom %d for %v, audit recomputed %d", got, set, want)
		}
	}
	return nil
}

// Network is a directory of distributors keyed by (name, content,
// permission). It lets the owner route redistribution grants and examples
// read like the paper's multi-party scenarios.
type Network struct {
	schema       *geometry.Schema
	mode         Mode
	distributors map[string]*Distributor
}

// NewNetwork creates an empty network whose distributors share a schema
// and validation mode.
func NewNetwork(schema *geometry.Schema, mode Mode) *Network {
	return &Network{schema: schema, mode: mode, distributors: make(map[string]*Distributor)}
}

// key builds the directory key for one corpus.
func key(name, content string, perm license.Permission) string {
	return name + "\x00" + content + "\x00" + string(perm)
}

// Grant delivers a redistribution license to the named distributor,
// creating its (content, permission) corpus on first use.
func (n *Network) Grant(distributor string, l *license.License) (*Distributor, error) {
	k := key(distributor, l.Content, l.Permission)
	d, ok := n.distributors[k]
	if !ok {
		d = NewDistributor(distributor, n.schema, n.mode, logstore.NewMem(0))
		n.distributors[k] = d
	}
	if _, err := d.AddRedistribution(l); err != nil {
		return nil, err
	}
	return d, nil
}

// Distributor looks up the corpus of (name, content, perm), or nil.
func (n *Network) Distributor(name, content string, perm license.Permission) *Distributor {
	return n.distributors[key(name, content, perm)]
}

// Distributors returns all registered corpora in unspecified order.
func (n *Network) Distributors() []*Distributor {
	out := make([]*Distributor, 0, len(n.distributors))
	for _, d := range n.distributors {
		out = append(out, d)
	}
	return out
}

// AuditAll audits every corpus in the network, returning reports keyed the
// same way lookups are. It is AuditAllContext with a background context.
func (n *Network) AuditAll(workers int) (map[*Distributor]core.Report, error) {
	return n.AuditAllContext(context.Background(), workers)
}

// AuditAllContext audits every corpus in the network under ctx. A
// deadline that expires mid-sweep returns the reports gathered so far
// (including the partially verified one, with its Completeness filled in)
// and an error matching drmerr.ErrAuditIncomplete.
func (n *Network) AuditAllContext(ctx context.Context, workers int) (map[*Distributor]core.Report, error) {
	out := make(map[*Distributor]core.Report, len(n.distributors))
	for _, d := range n.distributors {
		rep, _, err := d.AuditContext(ctx, workers)
		if errors.Is(err, drmerr.ErrAuditIncomplete) {
			out[d] = rep
			return out, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
		}
		if err != nil {
			if drmerr.IsCancellation(err) {
				return out, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
			}
			return nil, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
		}
		out[d] = rep
	}
	return out, nil
}
