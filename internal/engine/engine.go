// Package engine simulates the DRM distribution chain the paper assumes
// around its validator: an owner grants redistribution licenses to
// distributors; distributors issue usage (and sub-redistribution) licenses
// to consumers; a validation authority instance-validates every issuance,
// logs its belongs-to set and count, and audits the aggregate constraints
// offline (§1–§2).
//
// A Distributor manages one (content, permission) corpus:
//
//   - instance validation uses an R-tree over the corpus rectangles
//     (internal/rtree);
//   - in ModeOnline every issuance is additionally aggregate-checked
//     immediately via the validation tree's Headroom, so violations are
//     rejected at issue time (loss-free, Example 1's desired behaviour);
//   - in ModeOffline issuances are only logged — the paper's operating
//     point, where "violation of aggregate constraints is not a frequent
//     event" and auditing happens in batch via the geometric validator.
//
// A Network is a directory of distributors keyed by (distributor, content,
// permission), so multi-party scenarios read naturally in the examples.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/geometry"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/rtree"
	"repro/internal/trace"
	"repro/internal/vtree"
)

// Mode selects when aggregate validation happens.
type Mode int

const (
	// ModeOffline logs issuances without aggregate checks; call Audit to
	// validate in batch (the paper's setting).
	ModeOffline Mode = iota
	// ModeOnline rejects issuances that would violate any validation
	// equation, using Headroom over a live validation tree.
	ModeOnline
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOffline:
		return "offline"
	case ModeOnline:
		return "online"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sentinel errors distinguish the two rejection classes. They are typed
// with drmerr kinds, so errors.Is against the sentinel and
// drmerr.KindOf both classify a rejection.
var (
	// ErrInstanceInvalid marks an issuance whose rectangle is not
	// contained in any redistribution license (like L_U^2 in fig 2).
	ErrInstanceInvalid = drmerr.Sentinel(drmerr.KindInstanceInvalid,
		"engine: issuance fails instance-based validation")
	// ErrAggregateExhausted marks an online-mode issuance that would
	// violate a validation equation.
	ErrAggregateExhausted = drmerr.Sentinel(drmerr.KindViolation,
		"engine: issuance would violate an aggregate constraint")
)

// Stats counts a distributor's issuance outcomes.
type Stats struct {
	// Issued counts accepted issuances; IssuedCounts sums their counts.
	Issued       int
	IssuedCounts int64
	// RejectedInstance and RejectedAggregate count the two failure modes.
	RejectedInstance  int
	RejectedAggregate int
}

// Distributor manages one (content, permission) license corpus and its
// issuance log. It is not safe for concurrent use.
type Distributor struct {
	name    string
	mode    Mode
	corpus  *license.Corpus
	grouper *overlap.Grouper
	index   *rtree.Tree
	log     logstore.Store
	// live mirrors the log as a validation tree when mode == ModeOnline.
	// It is rebuilt lazily (liveDirty) so that loading a corpus license by
	// license over a pre-existing log — the catalog-reopen path — only
	// replays the log once the corpus is complete.
	live      *vtree.Tree
	liveDirty bool
	stats     Stats
	seq       int
}

// NewDistributor creates a distributor over the schema writing to the given
// log store (NewMem is a fine default).
func NewDistributor(name string, schema *geometry.Schema, mode Mode, log logstore.Store) *Distributor {
	corpus := license.NewCorpus(schema)
	return &Distributor{
		name:    name,
		mode:    mode,
		corpus:  corpus,
		grouper: overlap.NewGrouper(corpus),
		index:   rtree.New(schema, rtree.DefaultMaxEntries),
		log:     log,
	}
}

// Name returns the distributor's name.
func (d *Distributor) Name() string { return d.name }

// Corpus exposes the redistribution-license corpus (read-only use).
func (d *Distributor) Corpus() *license.Corpus { return d.corpus }

// Stats returns issuance counters.
func (d *Distributor) Stats() Stats { return d.stats }

// NumGroups returns the current number of disconnected license groups,
// maintained incrementally as licenses arrive.
func (d *Distributor) NumGroups() int { return d.grouper.NumGroups() }

// AddRedistribution registers a redistribution license received from
// upstream (the owner or a parent distributor) and returns its corpus
// index. In online mode the live validation tree is re-sized to the new
// corpus by replaying the log.
func (d *Distributor) AddRedistribution(l *license.License) (int, error) {
	idx, err := d.grouper.Add(l) // validates kind/schema and updates groups
	if err != nil {
		return 0, err
	}
	if err := d.index.Insert(l.Rect, idx); err != nil {
		return 0, err
	}
	if d.mode == ModeOnline {
		d.liveDirty = true
	}
	return idx, nil
}

// rebuildLiveContext replays the log into a fresh tree sized to the
// corpus, if a corpus change invalidated the current one. The replay is
// cancellable; a cut-short rebuild leaves the previous tree (and the
// dirty flag) in place.
func (d *Distributor) rebuildLiveContext(ctx context.Context) error {
	if d.live != nil && !d.liveDirty {
		return nil
	}
	t, err := vtree.BuildContext(ctx, d.corpus.Len(), d.log)
	if err != nil {
		return err
	}
	d.live = t
	d.liveDirty = false
	return nil
}

// headroomContext rebuilds the live tree if dirty and returns the
// remaining aggregate budget for set — the online-mode admission check.
func (d *Distributor) headroomContext(ctx context.Context, set bitset.Mask) (int64, error) {
	if err := d.rebuildLiveContext(ctx); err != nil {
		return 0, err
	}
	return d.live.Headroom(set, d.corpus.Aggregates())
}

// BelongsTo runs instance validation for a candidate rectangle and returns
// the belongs-to set as a mask (empty = instance-invalid).
func (d *Distributor) BelongsTo(rect geometry.Rect) bitset.Mask {
	var set bitset.Mask
	for _, j := range d.index.SearchContaining(rect) {
		set = set.With(j)
	}
	return set
}

// Issue processes one issuance request: a new license of the given kind
// with constraint rectangle rect and permission count. On success the
// issued license is returned and the issuance is logged. It is
// IssueContext with a background context.
func (d *Distributor) Issue(kind license.Kind, rect geometry.Rect, count int64) (*license.License, error) {
	return d.IssueContext(context.Background(), kind, rect, count)
}

// IssueContext is Issue under a context: cancellation is checked before
// the instance search and again before the (potentially log-replaying)
// online aggregate check, so an abandoned request never appends to the
// log. A cancelled issuance returns a KindCancelled error.
func (d *Distributor) IssueContext(ctx context.Context, kind license.Kind, rect geometry.Rect, count int64) (*license.License, error) {
	start := time.Now()
	defer M.IssueSeconds.ObserveSince(start)
	ctx, isp := trace.Start(ctx, "engine.issue")
	lic, err := d.issueContext(ctx, kind, rect, count)
	if isp != nil {
		isp.SetAttr("distributor", d.name)
		isp.SetInt("count", count)
		isp.Fail(err)
		isp.End()
	}
	return lic, err
}

func (d *Distributor) issueContext(ctx context.Context, kind license.Kind, rect geometry.Rect, count int64) (*license.License, error) {
	if err := ctx.Err(); err != nil {
		return nil, drmerr.Wrap(drmerr.KindCancelled, "engine.issue", err)
	}
	if d.corpus.Len() == 0 {
		return nil, fmt.Errorf("%w: distributor %s holds no redistribution licenses", ErrInstanceInvalid, d.name)
	}
	if count <= 0 {
		return nil, drmerr.New(drmerr.KindInvalidInput, "engine.issue", "engine: non-positive count %d", count)
	}
	_, bsp := trace.Start(ctx, "engine.instance")
	set := d.BelongsTo(rect)
	if bsp != nil {
		bsp.SetInt("set_size", int64(set.Len()))
		bsp.End()
	}
	if set.Empty() {
		d.stats.RejectedInstance++
		M.RejectedInstance.Inc()
		return nil, fmt.Errorf("%w: %s not contained in any redistribution license", ErrInstanceInvalid, rect)
	}
	if d.mode == ModeOnline {
		if err := ctx.Err(); err != nil {
			return nil, drmerr.Wrap(drmerr.KindCancelled, "engine.issue", err)
		}
		hctx, hsp := trace.Start(ctx, "engine.headroom")
		room, err := d.headroomContext(hctx, set)
		if hsp != nil {
			if err == nil {
				hsp.SetInt("headroom", room)
			}
			hsp.Fail(err)
			hsp.End()
		}
		if err != nil {
			return nil, err
		}
		if count > room {
			d.stats.RejectedAggregate++
			M.RejectedAggregate.Inc()
			return nil, fmt.Errorf("%w: requested %d, headroom %d for %v", ErrAggregateExhausted, count, room, set)
		}
	}
	rec := logstore.Record{Set: set, Count: count}
	if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
		return nil, err
	}
	if d.mode == ModeOnline {
		if err := d.live.Insert(set, count); err != nil {
			return nil, err
		}
	}
	d.stats.Issued++
	d.stats.IssuedCounts += count
	M.Issued.Inc()
	M.IssuedCounts.Add(count)
	d.seq++
	first := d.corpus.License(0)
	return &license.License{
		Name:       fmt.Sprintf("%s/U%d", d.name, d.seq),
		Kind:       kind,
		Content:    first.Content,
		Permission: first.Permission,
		Rect:       rect,
		Aggregate:  count,
	}, nil
}

// TopUp raises the budget of the redistribution license at corpus index i
// by extra — the remediation an owner applies when audits show a group
// running hot. Online-mode headroom reflects the new budget immediately.
func (d *Distributor) TopUp(i int, extra int64) error {
	return d.corpus.TopUp(i, extra)
}

// Audit runs the geometric offline validator over the accumulated log with
// the given parallelism and returns its report together with the auditor
// (for gain/timings inspection). It is AuditContext with a background
// context.
func (d *Distributor) Audit(workers int) (core.Report, *core.Auditor, error) {
	return d.AuditContext(context.Background(), workers)
}

// AuditContext is Audit under a context: log replay, tree division, and
// the per-group equation walks all observe ctx. On deadline expiry the
// verified-so-far report and auditor are returned together with an error
// matching drmerr.ErrAuditIncomplete; a cancellation during preparation
// returns a KindCancelled error and no auditor.
func (d *Distributor) AuditContext(ctx context.Context, workers int) (core.Report, *core.Auditor, error) {
	start := time.Now()
	defer M.AuditSeconds.ObserveSince(start)
	ctx, asp := trace.Start(ctx, "engine.audit")
	rep, aud, err := d.auditContext(ctx, workers)
	if asp != nil {
		asp.SetAttr("distributor", d.name)
		asp.SetInt("workers", int64(workers))
		if err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
			asp.Fail(err)
		}
		asp.End()
	}
	return rep, aud, err
}

func (d *Distributor) auditContext(ctx context.Context, workers int) (core.Report, *core.Auditor, error) {
	aud, err := core.NewAuditorContext(ctx, d.corpus, d.log)
	if err != nil {
		return core.Report{}, nil, err
	}
	if workers > 1 {
		aud.Workers = workers
	}
	rep, err := aud.AuditContext(ctx)
	if err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
		return core.Report{}, nil, err
	}
	M.Audits.Inc()
	return rep, aud, err
}

// Network is a directory of distributors keyed by (name, content,
// permission). It lets the owner route redistribution grants and examples
// read like the paper's multi-party scenarios.
type Network struct {
	schema       *geometry.Schema
	mode         Mode
	distributors map[string]*Distributor
}

// NewNetwork creates an empty network whose distributors share a schema
// and validation mode.
func NewNetwork(schema *geometry.Schema, mode Mode) *Network {
	return &Network{schema: schema, mode: mode, distributors: make(map[string]*Distributor)}
}

// key builds the directory key for one corpus.
func key(name, content string, perm license.Permission) string {
	return name + "\x00" + content + "\x00" + string(perm)
}

// Grant delivers a redistribution license to the named distributor,
// creating its (content, permission) corpus on first use.
func (n *Network) Grant(distributor string, l *license.License) (*Distributor, error) {
	k := key(distributor, l.Content, l.Permission)
	d, ok := n.distributors[k]
	if !ok {
		d = NewDistributor(distributor, n.schema, n.mode, logstore.NewMem(0))
		n.distributors[k] = d
	}
	if _, err := d.AddRedistribution(l); err != nil {
		return nil, err
	}
	return d, nil
}

// Distributor looks up the corpus of (name, content, perm), or nil.
func (n *Network) Distributor(name, content string, perm license.Permission) *Distributor {
	return n.distributors[key(name, content, perm)]
}

// Distributors returns all registered corpora in unspecified order.
func (n *Network) Distributors() []*Distributor {
	out := make([]*Distributor, 0, len(n.distributors))
	for _, d := range n.distributors {
		out = append(out, d)
	}
	return out
}

// AuditAll audits every corpus in the network, returning reports keyed the
// same way lookups are. It is AuditAllContext with a background context.
func (n *Network) AuditAll(workers int) (map[*Distributor]core.Report, error) {
	return n.AuditAllContext(context.Background(), workers)
}

// AuditAllContext audits every corpus in the network under ctx. A
// deadline that expires mid-sweep returns the reports gathered so far
// (including the partially verified one, with its Completeness filled in)
// and an error matching drmerr.ErrAuditIncomplete.
func (n *Network) AuditAllContext(ctx context.Context, workers int) (map[*Distributor]core.Report, error) {
	out := make(map[*Distributor]core.Report, len(n.distributors))
	for _, d := range n.distributors {
		rep, _, err := d.AuditContext(ctx, workers)
		if errors.Is(err, drmerr.ErrAuditIncomplete) {
			out[d] = rep
			return out, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
		}
		if err != nil {
			if drmerr.IsCancellation(err) {
				return out, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
			}
			return nil, fmt.Errorf("engine: auditing %s: %w", d.Name(), err)
		}
		out[d] = rep
	}
	return out, nil
}
