// Replica support: a distributor serving a log-shipped WAL mirror runs
// read-only — audits, headroom queries, and stats stay live while every
// mutation is refused with a typed KindReadOnly error pointing writers
// at the leader — and keeps its derived state warm by applying each
// shipped batch's decoded records to the stats counters and the headroom
// cache in place, so promotion (SetReadOnly(false)) serves its first
// issuance with no warm-up replay.

package engine

import (
	"context"

	"repro/internal/drmerr"
	"repro/internal/logstore"
)

// SetReadOnly flips the distributor's replica gate: while set, Issue,
// Revoke, Transfer, and ExpireSweep refuse with KindReadOnly. Promotion
// clears it after the follower's fetch loop drains.
func (d *Distributor) SetReadOnly(ro bool) { d.readOnly.Store(ro) }

// ReadOnly reports whether the distributor refuses mutations.
func (d *Distributor) ReadOnly() bool { return d.readOnly.Load() }

// readOnlyErr is the shared mutation gate.
func (d *Distributor) readOnlyErr(op string) error {
	if !d.readOnly.Load() {
		return nil
	}
	return drmerr.New(drmerr.KindReadOnly, op,
		"engine: distributor %s is a read-only replica; send writes to the leader", d.name)
}

// ApplyReplicated folds records a replication fetch just ingested into
// the log (wal.IngestFrames) into the distributor's derived state: the
// stats counters always, and the headroom cache incrementally when one
// is built and fresh. The log itself is already updated — this must NOT
// append — so any cache refusal (drift between the mirror and the cache)
// falls back to marking the cache stale, and the next query replays the
// authoritative log. Safe to call concurrently with read traffic.
func (d *Distributor) ApplyReplicated(ctx context.Context, recs []logstore.Record) {
	for _, rec := range recs {
		switch rec.Kind {
		case logstore.KindIssue:
			d.issued.Add(1)
			d.issuedCounts.Add(rec.Count)
			M.Issued.Inc()
			M.IssuedCounts.Add(rec.Count)
		case logstore.KindRevoke:
			d.revoked.Add(1)
			d.revokedCounts.Add(rec.Count)
			M.Revoked.Inc()
			M.RevokedCounts.Add(rec.Count)
		case logstore.KindExpire:
			d.expired.Add(1)
			d.expiredCounts.Add(rec.Count)
			M.Expired.Inc()
			M.ExpiredCounts.Add(rec.Count)
		case logstore.KindTransfer:
			d.transferred.Add(1)
			d.transferredCounts.Add(rec.Count)
			M.Transferred.Inc()
			M.TransferredCounts.Add(rec.Count)
		}
		d.applyReplicatedCache(ctx, rec)
	}
}

// applyReplicatedCache mirrors one shipped record into the headroom
// cache, exactly as the leader's online path did when it admitted it.
func (d *Distributor) applyReplicatedCache(ctx context.Context, rec logstore.Record) {
	d.mu.Lock()
	cache := d.cache
	fresh := cache != nil && !d.cacheDirty && !d.cacheStale
	d.mu.Unlock()
	if !fresh {
		return
	}
	switch rec.Kind {
	case logstore.KindIssue:
		_, ok, err := cache.Admit(ctx, rec.Set, rec.Count)
		if err != nil || !ok {
			// The leader admitted this record; a refusal here means the
			// cache drifted from the mirror. Replay on next use.
			d.markStale()
			return
		}
		cache.Confirm()
	case logstore.KindRevoke, logstore.KindExpire:
		cache.Hold()
		err := cache.Credit(ctx, rec.Set, rec.Count)
		cache.Confirm()
		if err != nil {
			d.markStale()
		}
	case logstore.KindTransfer:
		cache.Hold()
		err := cache.ApplyTransfer(rec.Set, rec.Count)
		cache.Confirm()
		if err != nil {
			d.markStale()
		}
	}
}
