package engine

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/headroom"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vtree"
	"repro/internal/wal"
)

// M holds the package's metric hooks, nil until Instrument is called; obs
// metric methods are no-ops on nil receivers, so uninstrumented engines
// record nothing and allocate nothing.
var M Metrics

// Metrics are the distribution-chain signals: issuance outcomes and
// latency, and distributor-level audit cost.
type Metrics struct {
	// Issued counts accepted issuances; IssuedCounts sums their counts.
	Issued       *obs.Counter
	IssuedCounts *obs.Counter
	// RejectedInstance / RejectedAggregate count the two rejection
	// classes (fig 2's L_U^2 shape vs online headroom exhaustion).
	RejectedInstance  *obs.Counter
	RejectedAggregate *obs.Counter
	// IssueSeconds is the wall time of one Distributor.Issue, including
	// instance validation and (online mode) the headroom check.
	IssueSeconds *obs.Histogram
	// Audits / AuditSeconds cover Distributor.Audit end to end (build,
	// divide, validate).
	Audits       *obs.Counter
	AuditSeconds *obs.Histogram
	// Lifecycle signals: accepted revokes/expires/transfers and the
	// permission counts they moved, cap-rejected transfers, expiry
	// sweeps, and lifecycle-operation latency.
	Revoked           *obs.Counter
	RevokedCounts     *obs.Counter
	Expired           *obs.Counter
	ExpiredCounts     *obs.Counter
	Transferred       *obs.Counter
	TransferredCounts *obs.Counter
	TransferRejected  *obs.Counter
	Sweeps            *obs.Counter
	LifecycleSeconds  *obs.Histogram
}

// Instrument registers the engine's metric families on reg and points the
// hooks at them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		Issued: reg.Counter("drm_issue_total",
			"Accepted issuances."),
		IssuedCounts: reg.Counter("drm_issue_counts_total",
			"Permission counts issued (sum over accepted issuances)."),
		RejectedInstance: reg.Counter("drm_issue_rejected_instance_total",
			"Issuances rejected by instance-based validation."),
		RejectedAggregate: reg.Counter("drm_issue_rejected_aggregate_total",
			"Issuances rejected by the online aggregate headroom check."),
		IssueSeconds: reg.Histogram("drm_issue_seconds",
			"Wall time of one issuance (instance + online aggregate check).", nil),
		Audits: reg.Counter("drm_distributor_audits_total",
			"Distributor-level offline audits."),
		AuditSeconds: reg.Histogram("drm_distributor_audit_seconds",
			"Wall time of one distributor audit (build + divide + validate).", nil),
		Revoked: reg.Counter("drm_lifecycle_revoke_total",
			"Accepted revocations."),
		RevokedCounts: reg.Counter("drm_lifecycle_revoke_counts_total",
			"Permission counts revoked (sum over accepted revocations)."),
		Expired: reg.Counter("drm_lifecycle_expire_total",
			"Expire records appended by sweeps."),
		ExpiredCounts: reg.Counter("drm_lifecycle_expire_counts_total",
			"Permission counts expired (sum over expire records)."),
		Transferred: reg.Counter("drm_lifecycle_transfer_total",
			"Accepted transfers."),
		TransferredCounts: reg.Counter("drm_lifecycle_transfer_counts_total",
			"Permission counts transferred (sum over accepted transfers)."),
		TransferRejected: reg.Counter("drm_lifecycle_transfer_rejected_total",
			"Transfers rejected by the cumulative transfer cap."),
		Sweeps: reg.Counter("drm_lifecycle_sweeps_total",
			"Expiry sweeps run (including sweeps that found nothing due)."),
		LifecycleSeconds: reg.Histogram("drm_lifecycle_seconds",
			"Wall time of one lifecycle operation (revoke or transfer).", nil),
	}
}

// InstrumentAll wires every instrumentable package below the engine —
// vtree, core, logstore, wal, headroom, cluster, and the engine itself
// — to one registry. Callers (drmserver, drmaudit, drmbench) do this
// once at startup, before any concurrent use.
func InstrumentAll(reg *obs.Registry) {
	vtree.Instrument(reg)
	core.Instrument(reg)
	logstore.Instrument(reg)
	wal.Instrument(reg)
	trace.Instrument(reg)
	headroom.Instrument(reg)
	cluster.Instrument(reg)
	Instrument(reg)
}
