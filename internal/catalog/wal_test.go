package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/wal"
)

var walCfg = Config{Mode: engine.ModeOnline, Backend: BackendWAL}

func TestWALBackendReopenResumesState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	c, err := OpenWith(dir, walCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := testCorpus(t, "m", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if e.WAL() == nil {
		t.Fatal("new entry is not WAL-backed under BackendWAL")
	}
	if _, err := os.Stat(filepath.Join(dir, "m__play.wal")); err != nil {
		t.Fatalf("WAL dir missing: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Dist.Issue(license.Usage, usageRect(t, corpus, 1, 3), 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenWith(dir, walCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	e2 := c2.Get("m", license.Play)
	if e2 == nil {
		t.Fatal("entry lost on reopen")
	}
	if e2.Log.Len() != 3 {
		t.Errorf("reopened log Len = %d, want 3", e2.Log.Len())
	}
	// 100 − 60 issued leaves 40 of headroom: online mode enforces it.
	r := usageRect(t, e2.Corpus, 1, 3)
	if _, err := e2.Dist.Issue(license.Usage, r, 41); err == nil {
		t.Error("over-issuance accepted after WAL reopen")
	}
	if _, err := e2.Dist.Issue(license.Usage, r, 40); err != nil {
		t.Errorf("exact headroom rejected after WAL reopen: %v", err)
	}
}

// TestBackendAutoDetect opens a catalog holding one JSONL entry and one
// WAL entry with either configured default: each entry must keep its
// on-disk backend.
func TestBackendAutoDetect(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	c, err := Open(dir, engine.ModeOnline) // default: jsonl
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(testCorpus(t, "jsonl-movie", license.Play, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c, err = OpenWith(dir, walCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(testCorpus(t, "wal-movie", license.Play, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	for _, backend := range []Backend{BackendJSONL, BackendWAL} {
		c, err := OpenWith(dir, Config{Mode: engine.ModeOnline, Backend: backend})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if got := c.Get("jsonl-movie", license.Play).WAL(); got != nil {
			t.Errorf("backend %s: jsonl entry reopened as WAL", backend)
		}
		if got := c.Get("wal-movie", license.Play).WAL(); got == nil {
			t.Errorf("backend %s: wal entry reopened as JSONL", backend)
		}
		c.Close()
	}
}

func TestSnapshotAll(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	c, err := OpenWith(dir, walCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	corpus := testCorpus(t, "m", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Dist.Issue(license.Usage, usageRect(t, corpus, 1, 3), 10); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := c.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	info, ok := infos[e]
	if !ok {
		t.Fatal("no snapshot info for WAL entry")
	}
	if info.Seq != 4 {
		t.Errorf("snapshot Seq = %d, want 4", info.Seq)
	}
	if e.WAL().SnapshotSeq() != 4 {
		t.Errorf("store SnapshotSeq = %d, want 4", e.WAL().SnapshotSeq())
	}
}

func TestParseBackend(t *testing.T) {
	for in, want := range map[string]Backend{"jsonl": BackendJSONL, "wal": BackendWAL} {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseBackend("csv"); err == nil {
		t.Error("ParseBackend accepted csv")
	}
}

// TestWALConfigPropagates checks Config.WAL reaches the opened store.
func TestWALConfigPropagates(t *testing.T) {
	cfg := walCfg
	cfg.WAL = wal.Options{SnapshotEvery: 2}
	c, err := OpenWith(filepath.Join(t.TempDir(), "cat"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	corpus := testCorpus(t, "m", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Dist.Issue(license.Usage, usageRect(t, corpus, 1, 3), 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.WAL().SnapshotSeq(); got != 4 {
		t.Errorf("SnapshotSeq = %d, want 4 (auto-snapshot every 2)", got)
	}
	st := e.WAL().RecoveryStats()
	if st.SnapshotRecords != 0 || st.TailRecords != 0 || st.TruncatedBytes != 0 {
		t.Errorf("fresh store has nonzero recovery stats: %+v", st)
	}
}
