// Package catalog manages a directory of license corpora and their
// issuance logs — the persistent, multi-content store behind a validation
// authority that serves more than one content item.
//
// Layout: for every (content, permission) pair the catalog keeps a corpus
// document and an issuance log in its directory,
//
//	<escape(content)>__<escape(permission)>.corpus.json
//	<escape(content)>__<escape(permission)>.log.jsonl   (jsonl backend)
//	<escape(content)>__<escape(permission)>.wal/        (wal backend)
//
// in the formats of internal/license (EncodeCorpus), internal/logstore
// (JSONL records), and internal/wal (segmented checksummed WAL). Open
// scans the directory and wires every pair into an engine.Distributor, so
// issuance, instance validation, and geometric auditing work per content
// out of the box. Reopening a catalog resumes exactly where it left off —
// logs are append-only and corpora immutable on disk (license acquisition
// rewrites the corpus file atomically). Each entry's log backend is
// auto-detected from what exists on disk; Config.Backend only decides
// what NEW logs are created as, so a catalog can migrate entry by entry.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/fsx"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/wal"
)

// Entry is one (content, permission) corpus with its distributor state.
type Entry struct {
	// Content and Permission identify the corpus.
	Content    string
	Permission license.Permission
	// Corpus is the redistribution-license set.
	Corpus *license.Corpus
	// Dist wraps the corpus for issuance and audits.
	Dist *engine.Distributor
	// Log is the durable issuance log backing Dist — a *logstore.File
	// (jsonl) or *wal.Store (wal), depending on what exists on disk.
	Log logstore.Durable
}

// WAL returns the entry's log as a WAL store, or nil when the entry is
// JSONL-backed — the type gate for snapshot and recovery operations.
func (e *Entry) WAL() *wal.Store {
	s, _ := e.Log.(*wal.Store)
	return s
}

// Backend selects the log format for newly created entries. Existing
// entries always open with whatever backend their files are in.
type Backend string

const (
	// BackendJSONL appends JSON lines — human-greppable, no checksums.
	BackendJSONL Backend = "jsonl"
	// BackendWAL appends checksummed binary frames to segmented files with
	// snapshots and crash recovery (internal/wal).
	BackendWAL Backend = "wal"
)

// ParseBackend parses a -log-backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case BackendJSONL, BackendWAL:
		return Backend(s), nil
	default:
		return "", fmt.Errorf("catalog: unknown log backend %q (want jsonl or wal)", s)
	}
}

// Config tunes how a catalog opens and creates entries.
type Config struct {
	// Mode is the validation mode every distributor runs in.
	Mode engine.Mode
	// Backend is the log format for entries created from now on; empty
	// means BackendJSONL.
	Backend Backend
	// WAL configures WAL-backed logs (segment size, fsync policy,
	// auto-snapshot cadence).
	WAL wal.Options
}

// Catalog is a directory of entries. It is not safe for concurrent use;
// callers serialise access (cmd/drmserver wraps it in a mutex).
type Catalog struct {
	dir     string
	cfg     Config
	entries map[string]*Entry
}

const (
	corpusSuffix = ".corpus.json"
	logSuffix    = ".log.jsonl"
	walSuffix    = ".wal"
)

// key builds the map key and file stem for a pair.
func key(content string, perm license.Permission) string {
	return url.PathEscape(content) + "__" + url.PathEscape(string(perm))
}

// Open loads every corpus in dir (creating dir if needed) and prepares a
// distributor per entry in the given validation mode, creating new logs
// as JSONL. It is OpenWith with a default Config.
func Open(dir string, mode engine.Mode) (*Catalog, error) {
	return OpenWith(dir, Config{Mode: mode})
}

// OpenWith loads every corpus in dir (creating dir if needed) under the
// given configuration.
func OpenWith(dir string, cfg Config) (*Catalog, error) {
	if cfg.Backend == "" {
		cfg.Backend = BackendJSONL
	}
	if _, err := ParseBackend(string(cfg.Backend)); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating %s: %w", dir, err)
	}
	c := &Catalog{dir: dir, cfg: cfg, entries: make(map[string]*Entry)}
	names, err := filepath.Glob(filepath.Join(dir, "*"+corpusSuffix))
	if err != nil {
		return nil, fmt.Errorf("catalog: scanning %s: %w", dir, err)
	}
	sort.Strings(names)
	for _, path := range names {
		if err := c.load(path); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// load wires one corpus file (and its log) into the catalog.
func (c *Catalog) load(corpusPath string) error {
	f, err := os.Open(corpusPath)
	if err != nil {
		return fmt.Errorf("catalog: open %s: %w", corpusPath, err)
	}
	corpus, err := license.DecodeCorpus(f)
	f.Close()
	if err != nil {
		return drmerr.Wrapf(drmerr.KindStoreCorrupt, "catalog.load", err, "catalog: %s", corpusPath)
	}
	if corpus.Len() == 0 {
		return drmerr.New(drmerr.KindStoreCorrupt, "catalog.load", "catalog: %s holds no licenses", corpusPath)
	}
	stem := strings.TrimSuffix(corpusPath, corpusSuffix)
	return c.wire(corpus, stem)
}

// wire builds the Entry for a decoded corpus whose files share stem.
func (c *Catalog) wire(corpus *license.Corpus, stem string) error {
	first := corpus.License(0)
	k := key(first.Content, first.Permission)
	if _, dup := c.entries[k]; dup {
		return fmt.Errorf("catalog: duplicate corpus for (%s, %s)", first.Content, first.Permission)
	}
	log, err := c.openLog(stem)
	if err != nil {
		return err
	}
	dist := engine.NewDistributor(first.Content, corpus.Schema(), c.cfg.Mode, log)
	for _, l := range corpus.Licenses() {
		cp := *l
		if _, err := dist.AddRedistribution(&cp); err != nil {
			log.Close()
			return fmt.Errorf("catalog: wiring (%s, %s): %w", first.Content, first.Permission, err)
		}
	}
	if c.cfg.Mode == engine.ModeOnline {
		// Recovery warm-up: build the admission cache now, from the log the
		// backend just recovered (snapshot + tail for a WAL), so the first
		// issuance after reopen pays no replay.
		if err := dist.WarmHeadroom(context.Background()); err != nil {
			log.Close()
			return fmt.Errorf("catalog: warming headroom for (%s, %s): %w", first.Content, first.Permission, err)
		}
	}
	c.entries[k] = &Entry{
		Content:    first.Content,
		Permission: first.Permission,
		Corpus:     dist.Corpus(),
		Dist:       dist,
		Log:        log,
	}
	return nil
}

// openLog opens the issuance log for stem, auto-detecting the backend
// from what exists on disk (a populated catalog keeps working however the
// process is configured) and falling back to Config.Backend for new
// entries.
func (c *Catalog) openLog(stem string) (logstore.Durable, error) {
	walDir := stem + walSuffix
	if _, err := os.Stat(walDir); err == nil {
		return wal.Open(walDir, c.cfg.WAL)
	}
	jsonl := stem + logSuffix
	if _, err := os.Stat(jsonl); err == nil {
		return logstore.OpenFile(jsonl)
	}
	if c.cfg.Backend == BackendWAL {
		return wal.Open(walDir, c.cfg.WAL)
	}
	return logstore.OpenFile(jsonl)
}

// Add registers a new corpus, persisting it to disk. The corpus'
// (content, permission) pair must not exist yet.
func (c *Catalog) Add(corpus *license.Corpus) (*Entry, error) {
	if corpus.Len() == 0 {
		return nil, errors.New("catalog: cannot add an empty corpus")
	}
	first := corpus.License(0)
	stem := filepath.Join(c.dir, key(first.Content, first.Permission))
	if err := writeCorpusAtomic(stem+corpusSuffix, corpus); err != nil {
		return nil, err
	}
	if err := c.wire(corpus, stem); err != nil {
		return nil, err
	}
	return c.entries[key(first.Content, first.Permission)], nil
}

// writeCorpusAtomic installs the corpus document durably: temp file,
// fsync, rename, directory fsync (fsx.WriteFileAtomic — the same install
// idiom WAL snapshots use). A crash mid-install leaves either the old
// document or the new one, never a torn or unsynced file.
func writeCorpusAtomic(path string, corpus *license.Corpus) error {
	err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return license.EncodeCorpus(w, corpus)
	})
	if err != nil {
		return fmt.Errorf("catalog: installing %s: %w", path, err)
	}
	return nil
}

// Acquire appends a redistribution license to an existing entry's corpus,
// rewrites the corpus file, and updates the live distributor (groups
// included, incrementally).
func (c *Catalog) Acquire(content string, perm license.Permission, l *license.License) error {
	e := c.Get(content, perm)
	if e == nil {
		return drmerr.New(drmerr.KindNotFound, "catalog.acquire", "catalog: no corpus for (%s, %s)", content, perm)
	}
	if _, err := e.Dist.AddRedistribution(l); err != nil {
		return err
	}
	stem := filepath.Join(c.dir, key(content, perm))
	return writeCorpusAtomic(stem+corpusSuffix, e.Corpus)
}

// Get returns the entry for (content, perm), or nil.
func (c *Catalog) Get(content string, perm license.Permission) *Entry {
	return c.entries[key(content, perm)]
}

// Entries returns all entries sorted by (content, permission).
func (c *Catalog) Entries() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Content != out[j].Content {
			return out[i].Content < out[j].Content
		}
		return out[i].Permission < out[j].Permission
	})
	return out
}

// Len returns the number of entries.
func (c *Catalog) Len() int { return len(c.entries) }

// Mode returns the validation mode every entry's distributor runs in.
func (c *Catalog) Mode() engine.Mode { return c.cfg.Mode }

// AuditAll runs the geometric audit over every entry. It is
// AuditAllContext with a background context.
func (c *Catalog) AuditAll(workers int) (map[*Entry]core.Report, error) {
	return c.AuditAllContext(context.Background(), workers)
}

// AuditAllContext runs the geometric audit over every entry under ctx.
// A deadline that expires mid-sweep returns the reports gathered so far
// (the cut-off entry's partial report included) and an error matching
// drmerr.ErrAuditIncomplete.
func (c *Catalog) AuditAllContext(ctx context.Context, workers int) (map[*Entry]core.Report, error) {
	out := make(map[*Entry]core.Report, len(c.entries))
	for _, e := range c.entries {
		rep, _, err := e.Dist.AuditContext(ctx, workers)
		if errors.Is(err, drmerr.ErrAuditIncomplete) {
			out[e] = rep
			return out, fmt.Errorf("catalog: auditing (%s, %s): %w", e.Content, e.Permission, err)
		}
		if err != nil {
			if drmerr.IsCancellation(err) {
				return out, fmt.Errorf("catalog: auditing (%s, %s): %w", e.Content, e.Permission, err)
			}
			return nil, fmt.Errorf("catalog: auditing (%s, %s): %w", e.Content, e.Permission, err)
		}
		out[e] = rep
	}
	return out, nil
}

// SnapshotAll checkpoints every WAL-backed entry (JSONL entries have no
// snapshot concept and are skipped), returning per-entry snapshot infos.
// It keeps going after a failure and returns the first error alongside
// whatever succeeded.
func (c *Catalog) SnapshotAll() (map[*Entry]wal.SnapshotInfo, error) {
	out := make(map[*Entry]wal.SnapshotInfo)
	var firstErr error
	for _, e := range c.entries {
		w := e.WAL()
		if w == nil {
			continue
		}
		info, err := w.Snapshot()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("catalog: snapshotting (%s, %s): %w", e.Content, e.Permission, err)
			}
			continue
		}
		out[e] = info
	}
	return out, firstErr
}

// Flush forces all issuance logs to the OS.
func (c *Catalog) Flush() error {
	for _, e := range c.entries {
		if err := e.Log.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every log. The catalog is unusable afterwards.
func (c *Catalog) Close() error {
	var firstErr error
	for _, e := range c.entries {
		if err := e.Log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.entries = nil
	return firstErr
}
