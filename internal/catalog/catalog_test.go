package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
)

// testCorpus builds a small single-axis corpus for the given pair.
func testCorpus(t *testing.T, content string, perm license.Permission, budgets ...int64) *license.Corpus {
	t.Helper()
	schema := geometry.MustSchema(geometry.Axis{Name: "period", Kind: geometry.KindInterval})
	c := license.NewCorpus(schema)
	for i, b := range budgets {
		lo := int64(i * 5) // consecutive licenses overlap
		_, err := c.Add(&license.License{
			Name:       "L",
			Kind:       license.Redistribution,
			Content:    content,
			Permission: perm,
			Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(lo, lo+10))),
			Aggregate:  b,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func usageRect(t *testing.T, c *license.Corpus, lo, hi int64) geometry.Rect {
	t.Helper()
	return geometry.MustRect(c.Schema(), geometry.IntervalValue(interval.New(lo, hi)))
}

func TestOpenEmptyAndAdd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	c, err := Open(dir, engine.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Errorf("fresh catalog has %d entries", c.Len())
	}
	e, err := c.Add(testCorpus(t, "movie-1", license.Play, 100, 200))
	if err != nil {
		t.Fatal(err)
	}
	if e.Content != "movie-1" || e.Permission != license.Play {
		t.Errorf("entry = %+v", e)
	}
	if c.Get("movie-1", license.Play) != e {
		t.Error("Get after Add failed")
	}
	if c.Get("movie-1", license.Copy) != nil {
		t.Error("Get of absent permission succeeded")
	}
	// The corpus file must exist on disk.
	if _, err := os.Stat(filepath.Join(dir, "movie-1__play.corpus.json")); err != nil {
		t.Errorf("corpus file missing: %v", err)
	}
}

func TestAddRejectsDuplicatesAndEmpty(t *testing.T) {
	c, err := Open(t.TempDir(), engine.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Add(testCorpus(t, "m", license.Play, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(testCorpus(t, "m", license.Play, 10)); err == nil {
		t.Error("duplicate pair accepted")
	}
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	if _, err := c.Add(license.NewCorpus(schema)); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestReopenResumesState(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, engine.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	corpus := testCorpus(t, "movie-2", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Issue 60 of the 100 budget, then close.
	if _, err := e.Dist.Issue(license.Usage, usageRect(t, corpus, 1, 3), 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log must replay so only 40 counts remain.
	c2, err := Open(dir, engine.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("reopened catalog has %d entries", c2.Len())
	}
	e2 := c2.Get("movie-2", license.Play)
	if e2 == nil {
		t.Fatal("entry lost across reopen")
	}
	r := usageRect(t, e2.Corpus, 1, 3)
	if _, err := e2.Dist.Issue(license.Usage, r, 41); !errors.Is(err, engine.ErrAggregateExhausted) {
		t.Errorf("expected exhaustion after reopen, got %v", err)
	}
	if _, err := e2.Dist.Issue(license.Usage, r, 40); err != nil {
		t.Errorf("remaining budget rejected: %v", err)
	}
}

func TestAcquirePersistsAndRegroups(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, engine.ModeOffline)
	if err != nil {
		t.Fatal(err)
	}
	corpus := testCorpus(t, "m3", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Acquire a disjoint license: groups 1 → 2, persisted.
	schema := e.Corpus.Schema()
	far := &license.License{
		Name: "L-far", Kind: license.Redistribution, Content: "m3",
		Permission: license.Play,
		Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(1000, 1010))),
		Aggregate:  50,
	}
	if err := c.Acquire("m3", license.Play, far); err != nil {
		t.Fatal(err)
	}
	if e.Dist.NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", e.Dist.NumGroups())
	}
	if err := c.Acquire("nope", license.Play, far); err == nil {
		t.Error("acquire on missing entry accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen sees both licenses.
	c2, err := Open(dir, engine.ModeOffline)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Get("m3", license.Play).Corpus.Len(); got != 2 {
		t.Errorf("reopened corpus has %d licenses, want 2", got)
	}
}

func TestEntriesSortedAndAuditAll(t *testing.T) {
	c, err := Open(t.TempDir(), engine.ModeOffline)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, spec := range []struct {
		content string
		perm    license.Permission
	}{
		{"b-movie", license.Play},
		{"a-movie", license.Play},
		{"a-movie", license.Copy},
	} {
		if _, err := c.Add(testCorpus(t, spec.content, spec.perm, 100)); err != nil {
			t.Fatal(err)
		}
	}
	entries := c.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Content != "a-movie" || entries[0].Permission != license.Copy {
		t.Errorf("entries[0] = (%s, %s)", entries[0].Content, entries[0].Permission)
	}
	if entries[2].Content != "b-movie" {
		t.Errorf("entries[2] = %s", entries[2].Content)
	}
	// Over-issue on one entry; AuditAll must flag exactly that one.
	e := c.Get("a-movie", license.Play)
	if _, err := e.Dist.Issue(license.Usage, usageRect(t, e.Corpus, 1, 2), 150); err != nil {
		t.Fatal(err)
	}
	reports, err := c.AuditAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for entry, rep := range reports {
		wantOK := entry != e
		if rep.OK() != wantOK {
			t.Errorf("(%s,%s): ok=%v want %v", entry.Content, entry.Permission, rep.OK(), wantOK)
		}
	}
}

func TestOpenRejectsCorruptCorpus(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "x__play"+corpusSuffix)
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, engine.ModeOnline); err == nil {
		t.Error("corrupt corpus accepted")
	}
}

func TestKeyEscaping(t *testing.T) {
	c, err := Open(t.TempDir(), engine.ModeOffline)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Contents with separators must not collide or escape the directory.
	weird := "a/b c__d"
	if _, err := c.Add(testCorpus(t, weird, license.Play, 10)); err != nil {
		t.Fatal(err)
	}
	if c.Get(weird, license.Play) == nil {
		t.Error("weird content not retrievable")
	}
}

func TestFlushMakesRecordsDurable(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, engine.ModeOffline)
	if err != nil {
		t.Fatal(err)
	}
	corpus := testCorpus(t, "m9", license.Play, 100)
	e, err := c.Add(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dist.Issue(license.Usage, usageRect(t, corpus, 1, 2), 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// The record is visible to an independent reader before Close.
	logPath := filepath.Join(dir, "m9__play"+logSuffix)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("flushed log is empty")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
