package signature

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/license"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ex := license.NewExample1()
	for _, l := range ex.Corpus.Licenses() {
		sig, err := Sign(l, priv)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(l, pub, sig); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ex := license.NewExample1()
	l := ex.Corpus.License(1) // L_D^2, budget 1000
	sig, err := Sign(l, priv)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the budget: the classic attack the signature must stop.
	tampered := *l
	tampered.Aggregate = 1_000_000
	if err := Verify(&tampered, pub, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("inflated budget verified: %v", err)
	}
	// Rename: also rejected.
	renamed := *l
	renamed.Name = "L_D^2-evil"
	if err := Verify(&renamed, pub, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("renamed license verified: %v", err)
	}
	// Wrong key: rejected.
	otherPub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l, otherPub, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("foreign key verified: %v", err)
	}
	// Truncated signature: rejected.
	if err := Verify(l, pub, sig[:10]); !errors.Is(err, ErrBadSignature) {
		t.Errorf("truncated signature verified: %v", err)
	}
}

func TestCanonicalBytesSemantics(t *testing.T) {
	// Equal semantics → equal bytes even across distinct schema instances.
	a := license.NewExample1().Corpus.License(0)
	b := license.NewExample1().Corpus.License(0)
	ba, err := CanonicalBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := CanonicalBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Error("identical licenses produced different canonical bytes")
	}
	// Different semantics → different bytes (adjacent-field confusion
	// guard: moving a character between name and content must change it).
	c := *a
	c.Name = a.Name + "X"
	bc, err := CanonicalBytes(&c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba, bc) {
		t.Error("different names produced equal canonical bytes")
	}
	// Invalid licenses are rejected.
	bad := *a
	bad.Aggregate = -1
	if _, err := CanonicalBytes(&bad); err == nil {
		t.Error("invalid license canonicalised")
	}
}

func TestSignedCorpusRoundTrip(t *testing.T) {
	_, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ex := license.NewExample1()
	var buf bytes.Buffer
	if err := WriteSignedCorpus(&buf, ex.Corpus, priv); err != nil {
		t.Fatal(err)
	}
	// Trust-on-first-use: nil trusted key, pin the returned one.
	corpus, pub, err := ReadSignedCorpus(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 5 {
		t.Errorf("corpus len = %d", corpus.Len())
	}
	// Pinned issuer accepts.
	if _, _, err := ReadSignedCorpus(bytes.NewReader(buf.Bytes()), pub); err != nil {
		t.Errorf("pinned read failed: %v", err)
	}
	// Foreign pin rejects.
	otherPub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSignedCorpus(bytes.NewReader(buf.Bytes()), otherPub); !errors.Is(err, ErrBadSignature) {
		t.Errorf("foreign pin accepted: %v", err)
	}
}

func TestSignedCorpusRejectsTampering(t *testing.T) {
	_, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ex := license.NewExample1()
	var buf bytes.Buffer
	if err := WriteSignedCorpus(&buf, ex.Corpus, priv); err != nil {
		t.Fatal(err)
	}
	// Mutate the embedded corpus document (an aggregate digit) while
	// keeping the original signature: decode the outer JSON, edit the
	// payload, re-encode.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	payload, err := base64.StdEncoding.DecodeString(doc["corpus"].(string))
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(payload), "2000", "9000", 1)
	if edited == string(payload) {
		t.Fatal("test setup: no byte to flip")
	}
	doc["corpus"] = base64.StdEncoding.EncodeToString([]byte(edited))
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSignedCorpus(bytes.NewReader(tampered), nil); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered signed corpus accepted: %v", err)
	}
}

func TestSignedCorpusDecodeErrors(t *testing.T) {
	if _, _, err := ReadSignedCorpus(strings.NewReader("{"), nil); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, _, err := ReadSignedCorpus(strings.NewReader(`{"version":9}`), nil); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := ReadSignedCorpus(strings.NewReader(`{"version":1,"public_key":"AAA="}`), nil); err == nil {
		t.Error("short key accepted")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	pub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	s := KeyToString(pub)
	back, err := KeyFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(back) {
		t.Error("key round-trip failed")
	}
	if _, err := KeyFromString("not base64!!"); err == nil {
		t.Error("garbage key accepted")
	}
	if _, err := KeyFromString("AAAA"); err == nil {
		t.Error("short key accepted")
	}
}
