// Package signature provides license integrity: Ed25519 signatures over a
// canonical license encoding, and signed corpus documents.
//
// DRM licenses are security tokens — a distributor must be able to prove a
// license came from the owner, and a validation authority must reject
// tampered constraints or inflated budgets before validating anything.
// The paper assumes this layer exists ("the owner issues redistribution
// licenses"); this package supplies it with stdlib crypto:
//
//   - Canonical bytes: a deterministic, self-delimiting encoding of a
//     license's semantic fields (name, kind, content, permission, every
//     constraint axis, aggregate). Two licenses with equal semantics have
//     equal canonical bytes regardless of schema pointer identity.
//   - Sign/Verify: Ed25519 over those bytes.
//   - SignedCorpus: a corpus document (the internal/license JSON format)
//     wrapped with the issuer's public key and a signature over the
//     document bytes, so corpus files can be distributed over untrusted
//     channels.
package signature

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/geometry"
	"repro/internal/license"
)

// GenerateKey creates an Ed25519 key pair for an issuer (the owner or a
// delegating distributor).
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("signature: generating key: %w", err)
	}
	return pub, priv, nil
}

// CanonicalBytes encodes the license's semantic fields deterministically:
// length-prefixed strings and fixed-width integers, axes in schema order.
func CanonicalBytes(l *license.License) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	writeString := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	writeInt := func(v int64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(v))
		buf.Write(n[:])
	}
	writeString("drm-license-v1")
	writeString(l.Name)
	writeInt(int64(l.Kind))
	writeString(l.Content)
	writeString(string(l.Permission))
	schema := l.Rect.Schema()
	writeInt(int64(schema.Dims()))
	for i := 0; i < schema.Dims(); i++ {
		ax := schema.Axis(i)
		writeString(ax.Name)
		writeInt(int64(ax.Kind))
		v := l.Rect.Value(i)
		switch ax.Kind {
		case geometry.KindInterval:
			iv := v.Interval()
			writeInt(iv.Lo)
			writeInt(iv.Hi)
		case geometry.KindSet:
			writeInt(int64(ax.Universe))
			elems := v.Set().Elems()
			writeInt(int64(len(elems)))
			for _, e := range elems {
				writeInt(int64(e))
			}
		}
	}
	writeInt(l.Aggregate)
	return buf.Bytes(), nil
}

// Sign returns the issuer's signature over the license's canonical bytes.
func Sign(l *license.License, priv ed25519.PrivateKey) ([]byte, error) {
	msg, err := CanonicalBytes(l)
	if err != nil {
		return nil, err
	}
	return ed25519.Sign(priv, msg), nil
}

// ErrBadSignature marks a failed verification.
var ErrBadSignature = errors.New("signature: verification failed")

// Verify checks sig against the license's canonical bytes.
func Verify(l *license.License, pub ed25519.PublicKey, sig []byte) error {
	msg, err := CanonicalBytes(l)
	if err != nil {
		return err
	}
	if !ed25519.Verify(pub, msg, sig) {
		return fmt.Errorf("%w: license %s", ErrBadSignature, l.Name)
	}
	return nil
}

// signedDoc is the wire form of a signed corpus: the corpus document
// bytes (exactly as internal/license encodes them) plus issuer key and
// signature, all base64 inside one JSON object.
type signedDoc struct {
	Version   int    `json:"version"`
	Corpus    []byte `json:"corpus"` // JSON document from EncodeCorpus
	PublicKey []byte `json:"public_key"`
	Signature []byte `json:"signature"`
}

const signedVersion = 1

// WriteSignedCorpus encodes the corpus, signs the document bytes, and
// writes the signed wrapper.
func WriteSignedCorpus(w io.Writer, c *license.Corpus, priv ed25519.PrivateKey) error {
	var doc bytes.Buffer
	if err := license.EncodeCorpus(&doc, c); err != nil {
		return err
	}
	out := signedDoc{
		Version:   signedVersion,
		Corpus:    doc.Bytes(),
		PublicKey: priv.Public().(ed25519.PublicKey),
		Signature: ed25519.Sign(priv, doc.Bytes()),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("signature: encoding signed corpus: %w", err)
	}
	return nil
}

// ReadSignedCorpus verifies and decodes a signed corpus. When trusted is
// non-nil the embedded public key must equal it (pinned issuer); with a
// nil trusted key the embedded key is used (trust-on-first-use), and
// returned for the caller to pin.
func ReadSignedCorpus(r io.Reader, trusted ed25519.PublicKey) (*license.Corpus, ed25519.PublicKey, error) {
	var doc signedDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("signature: decoding signed corpus: %w", err)
	}
	if doc.Version != signedVersion {
		return nil, nil, fmt.Errorf("signature: unsupported version %d", doc.Version)
	}
	if len(doc.PublicKey) != ed25519.PublicKeySize {
		return nil, nil, fmt.Errorf("signature: bad public key length %d", len(doc.PublicKey))
	}
	pub := ed25519.PublicKey(doc.PublicKey)
	if trusted != nil && !pub.Equal(trusted) {
		return nil, nil, fmt.Errorf("%w: issuer key mismatch", ErrBadSignature)
	}
	if !ed25519.Verify(pub, doc.Corpus, doc.Signature) {
		return nil, nil, fmt.Errorf("%w: corpus document", ErrBadSignature)
	}
	c, err := license.DecodeCorpus(bytes.NewReader(doc.Corpus))
	if err != nil {
		return nil, nil, err
	}
	return c, pub, nil
}

// KeyToString renders a public key for config files and logs.
func KeyToString(pub ed25519.PublicKey) string {
	return base64.StdEncoding.EncodeToString(pub)
}

// KeyFromString parses KeyToString's output.
func KeyFromString(s string) (ed25519.PublicKey, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("signature: parsing key: %w", err)
	}
	if len(b) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("signature: bad public key length %d", len(b))
	}
	return ed25519.PublicKey(b), nil
}
