// Package workload generates the synthetic license corpora and issuance
// logs of the paper's evaluation (§5).
//
// The paper's setup: each redistribution license has 4 instance-based
// constraints; aggregate budgets are uniform in [5000, 20000]; issued
// licenses carry counts uniform in [10, 30]; the log grows from ~600
// records at N=1 to ~22000 at N=35 (~630 per license). The authors do not
// publish their corpus, so this generator plants a controllable group
// structure and lets the overlap machinery rediscover it:
//
//   - axis 0 ("period") is carved into disjoint bands, one per group, with
//     gaps between bands — licenses from different groups can never
//     overlap (they are disjoint on axis 0);
//   - within a group, every license is forced to overlap its predecessor
//     on all axes (it is grown around a point sampled inside the
//     predecessor), so the group's overlap graph is connected — a chain at
//     minimum, denser by accident;
//   - issued licenses are sampled inside a uniformly chosen license's
//     rectangle, so every log record's belongs-to set is non-empty and
//     (by construction) confined to one group, exactly as Corollary 1.1
//     demands of real instance-validated logs.
//
// Everything is driven by a seeded PRNG: identical configs generate
// identical workloads.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/logstore"
)

// Config parameterises a synthetic workload. The zero value is not valid;
// use Default or fill N and call Normalize.
type Config struct {
	// N is the number of redistribution licenses (1..64).
	N int
	// Groups is the number of disconnected groups to plant (clamped to
	// [1, min(N, 5 and N)]). The paper's corpora show 1–5 groups (fig 6).
	Groups int
	// Dims is M, the number of instance-based constraint axes (all
	// interval-valued). The paper uses 4.
	Dims int
	// RecordsPerLicense scales the log: total records ≈ N × this. The
	// paper's logs go from ~600 (N=1) to ~22000 (N=35), i.e. ~630 each.
	RecordsPerLicense int
	// AggregateLo/Hi bound the uniform aggregate budgets (paper: 5000–20000).
	AggregateLo, AggregateHi int64
	// CountLo/Hi bound the uniform per-issuance counts (paper: 10–30).
	CountLo, CountHi int64
	// Skew selects which license each issuance is sampled inside: 0
	// (default) draws uniformly, as §5 implies; values > 1 draw from a
	// Zipf distribution with that exponent over a random license
	// popularity order, concentrating the log on a few hot licenses —
	// the realistic regime for a content marketplace. Values in (0, 1]
	// are invalid (rand.Zipf requires s > 1).
	Skew float64
	// Seed drives the PRNG.
	Seed int64
}

// Default returns the paper's §5 configuration for N licenses.
func Default(n int) Config {
	return Config{
		N:                 n,
		Groups:            PaperGroupCurve(n),
		Dims:              4,
		RecordsPerLicense: 630,
		AggregateLo:       5000,
		AggregateHi:       20000,
		CountLo:           10,
		CountHi:           30,
		Seed:              1,
	}
}

// PaperGroupCurve maps N to a group count fluctuating through 1–5, shaped
// like fig 6 (the count may stay, rise, or fall as N grows; it is 1 for the
// smallest corpora). The paper does not publish its exact curve, so this is
// a deterministic synthetic stand-in with the same range and behaviour.
// For N > 6 the curve stays at ≥ 2 groups: a large single-group corpus
// degenerates the proposed validator back to 2^N equations, which the
// paper's feasible-at-N=35 results rule out for their corpora.
func PaperGroupCurve(n int) int {
	if n <= 2 {
		return 1
	}
	if n <= 6 {
		// 2,3,1,2 over n=3..6: small corpora can still collapse to one group.
		g := 1 + n%3
		if g > n {
			g = n
		}
		return g
	}
	// Deterministic fluctuation through 2..5: rises with n, dips periodically.
	return 2 + (n/4+n/9)%4
}

// Normalize fills defaults and clamps inconsistent fields, returning an
// error for unusable configs.
func (c *Config) Normalize() error {
	if c.N < 1 || c.N > bitset.MaxMaskElems {
		return fmt.Errorf("workload: N = %d outside [1,64]", c.N)
	}
	if c.Dims == 0 {
		c.Dims = 4
	}
	if c.Dims < 1 {
		return fmt.Errorf("workload: Dims = %d", c.Dims)
	}
	if c.Groups < 1 {
		c.Groups = 1
	}
	if c.Groups > c.N {
		c.Groups = c.N
	}
	if c.RecordsPerLicense <= 0 {
		c.RecordsPerLicense = 630
	}
	if c.AggregateLo <= 0 {
		c.AggregateLo, c.AggregateHi = 5000, 20000
	}
	if c.AggregateHi < c.AggregateLo {
		return fmt.Errorf("workload: aggregate range [%d,%d] reversed", c.AggregateLo, c.AggregateHi)
	}
	if c.CountLo <= 0 {
		c.CountLo, c.CountHi = 10, 30
	}
	if c.CountHi < c.CountLo {
		return fmt.Errorf("workload: count range [%d,%d] reversed", c.CountLo, c.CountHi)
	}
	if c.Skew != 0 && c.Skew <= 1 {
		return fmt.Errorf("workload: Skew must be 0 (uniform) or > 1 (Zipf exponent), got %v", c.Skew)
	}
	return nil
}

// Workload is a generated corpus plus its issuance log.
type Workload struct {
	// Config echoes the (normalized) generating configuration.
	Config Config
	// Schema is the shared constraint schema (Config.Dims interval axes).
	Schema *geometry.Schema
	// Corpus holds the N redistribution licenses.
	Corpus *license.Corpus
	// Records is the issuance log (belongs-to sets with counts).
	Records []logstore.Record
	// PlantedGroups is the group id (0-based) each license was planted
	// into; the overlap machinery must rediscover exactly this partition.
	PlantedGroups []int
}

// Store copies the records into an in-memory log store.
func (w *Workload) Store() *logstore.Mem {
	m := logstore.NewMem(len(w.Records))
	for _, r := range w.Records {
		if err := m.Append(r); err != nil {
			// Generated records are valid by construction.
			panic(fmt.Sprintf("workload: invalid generated record: %v", err))
		}
	}
	return m
}

// axisSpan is the coordinate width of each group band on axis 0, and of
// the whole space on other axes.
const (
	bandWidth = 1 << 20
	bandGap   = 1 << 10
)

// Generate builds a workload from the config (normalizing it first).
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	axes := make([]geometry.Axis, cfg.Dims)
	for i := range axes {
		axes[i] = geometry.Axis{Name: fmt.Sprintf("c%d", i), Kind: geometry.KindInterval}
	}
	schema, err := geometry.NewSchema(axes...)
	if err != nil {
		return nil, err
	}

	w := &Workload{Config: cfg, Schema: schema, Corpus: license.NewCorpus(schema)}

	// Deal licenses to groups round-robin so sizes differ by at most one.
	groupOf := make([]int, cfg.N)
	for i := range groupOf {
		groupOf[i] = i % cfg.Groups
	}
	rng.Shuffle(cfg.N, func(i, j int) { groupOf[i], groupOf[j] = groupOf[j], groupOf[i] })
	w.PlantedGroups = groupOf

	// prev[g] is the rectangle of group g's most recent license; new
	// members are grown around a point inside it, guaranteeing
	// connectivity.
	prev := make([]geometry.Rect, cfg.Groups)
	for i := 0; i < cfg.N; i++ {
		g := groupOf[i]
		rect := growRect(rng, schema, g, prev[g])
		prev[g] = rect
		agg := cfg.AggregateLo + rng.Int63n(cfg.AggregateHi-cfg.AggregateLo+1)
		_, err := w.Corpus.Add(&license.License{
			Name:       fmt.Sprintf("L_D^%d", i+1),
			Kind:       license.Redistribution,
			Content:    "K",
			Permission: license.Play,
			Rect:       rect,
			Aggregate:  agg,
		})
		if err != nil {
			return nil, err
		}
	}

	// Issue licenses: sample a usage rectangle inside a chosen license and
	// log its belongs-to set. The license is drawn uniformly, or from a
	// Zipf popularity distribution when cfg.Skew > 1.
	pick := func() int { return rng.Intn(cfg.N) }
	if cfg.Skew > 1 {
		// A random permutation decouples popularity rank from group
		// structure (otherwise license 0's group would absorb the log).
		order := rng.Perm(cfg.N)
		zipf := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.N-1))
		pick = func() int { return order[zipf.Uint64()] }
	}
	total := cfg.N * cfg.RecordsPerLicense
	w.Records = make([]logstore.Record, 0, total)
	for len(w.Records) < total {
		j := pick()
		q := shrinkRect(rng, w.Corpus.License(j).Rect)
		belongs := w.Corpus.BelongsTo(q)
		var set bitset.Mask
		for _, b := range belongs {
			set = set.With(b)
		}
		if set.Empty() {
			// Impossible by construction (q ⊆ license j), but guard anyway.
			continue
		}
		count := cfg.CountLo + rng.Int63n(cfg.CountHi-cfg.CountLo+1)
		w.Records = append(w.Records, logstore.Record{Set: set, Count: count})
	}
	return w, nil
}

// MustGenerate is Generate for trusted configs; it panics on error.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// growRect creates a license rectangle for group g. Axis 0 stays strictly
// inside group g's band; if prev is non-zero the rectangle is grown around
// a point sampled inside prev, forcing all-axis overlap with it.
func growRect(rng *rand.Rand, schema *geometry.Schema, g int, prev geometry.Rect) geometry.Rect {
	dims := schema.Dims()
	vals := make([]geometry.Value, dims)
	for d := 0; d < dims; d++ {
		var lo, hi int64 // allowed placement range for this axis
		if d == 0 {
			base := int64(g) * (bandWidth + bandGap)
			lo, hi = base, base+bandWidth-1
		} else {
			lo, hi = 0, bandWidth-1
		}
		var anchor int64
		if prev.IsZero() {
			anchor = lo + rng.Int63n(hi-lo+1)
		} else {
			p := prev.Value(d).Interval()
			anchor = p.Lo + rng.Int63n(p.Hi-p.Lo+1)
		}
		// Random extent around the anchor, clamped to the band.
		left := anchor - rng.Int63n(bandWidth/8+1)
		right := anchor + rng.Int63n(bandWidth/8+1)
		if left < lo {
			left = lo
		}
		if right > hi {
			right = hi
		}
		vals[d] = geometry.IntervalValue(interval.New(left, right))
	}
	return geometry.MustRect(schema, vals...)
}

// shrinkRect samples a small usage rectangle inside r (a sub-interval on
// each axis).
func shrinkRect(rng *rand.Rand, r geometry.Rect) geometry.Rect {
	schema := r.Schema()
	vals := make([]geometry.Value, schema.Dims())
	for d := range vals {
		iv := r.Value(d).Interval()
		span := iv.Hi - iv.Lo + 1
		lo := iv.Lo + rng.Int63n(span)
		maxLen := iv.Hi - lo + 1
		hi := lo + rng.Int63n(maxLen)
		vals[d] = geometry.IntervalValue(interval.New(lo, hi))
	}
	return geometry.MustRect(schema, vals...)
}

// Requests converts the workload's log into an online request sequence for
// allocator experiments (same sets and counts, in log order).
func (w *Workload) Requests() []logstore.Record {
	return append([]logstore.Record(nil), w.Records...)
}
