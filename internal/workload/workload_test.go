package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

func TestNormalizeDefaults(t *testing.T) {
	c := Config{N: 10}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Dims != 4 || c.Groups != 1 || c.RecordsPerLicense != 630 {
		t.Errorf("defaults = %+v", c)
	}
	if c.AggregateLo != 5000 || c.AggregateHi != 20000 || c.CountLo != 10 || c.CountHi != 30 {
		t.Errorf("paper ranges not defaulted: %+v", c)
	}
}

func TestNormalizeErrors(t *testing.T) {
	bad := []Config{
		{N: 0},
		{N: 65},
		{N: 5, Dims: -1},
		{N: 5, AggregateLo: 100, AggregateHi: 50},
		{N: 5, CountLo: 30, CountHi: 10},
	}
	for i, c := range bad {
		if err := c.Normalize(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestNormalizeClampsGroups(t *testing.T) {
	c := Config{N: 3, Groups: 10}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Groups != 3 {
		t.Errorf("Groups = %d, want 3", c.Groups)
	}
}

func TestPaperGroupCurve(t *testing.T) {
	for n := 1; n <= 40; n++ {
		g := PaperGroupCurve(n)
		if g < 1 || g > 5 || g > n {
			t.Errorf("PaperGroupCurve(%d) = %d out of range", n, g)
		}
	}
	if PaperGroupCurve(1) != 1 || PaperGroupCurve(2) != 1 {
		t.Error("smallest corpora must have 1 group")
	}
	// The curve must actually fluctuate (fig 6 shows rises and falls).
	rises, falls := false, false
	for n := 3; n <= 35; n++ {
		d := PaperGroupCurve(n) - PaperGroupCurve(n-1)
		if d > 0 {
			rises = true
		}
		if d < 0 {
			falls = true
		}
	}
	if !rises || !falls {
		t.Errorf("curve must rise and fall: rises=%v falls=%v", rises, falls)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 8, Groups: 3, Seed: 42, RecordsPerLicense: 50}
	w1 := MustGenerate(cfg)
	w2 := MustGenerate(cfg)
	if len(w1.Records) != len(w2.Records) {
		t.Fatal("record counts differ across identical configs")
	}
	for i := range w1.Records {
		if w1.Records[i] != w2.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	for i := 0; i < w1.Corpus.Len(); i++ {
		// Rects live on distinct (but identical) schemas, so compare by
		// rendered value.
		if w1.Corpus.License(i).Rect.String() != w2.Corpus.License(i).Rect.String() {
			t.Fatalf("license %d rect differs", i)
		}
		if w1.Corpus.License(i).Aggregate != w2.Corpus.License(i).Aggregate {
			t.Fatalf("license %d aggregate differs", i)
		}
	}
}

func TestGeneratePlantedGroupsRecovered(t *testing.T) {
	// The overlap machinery must rediscover exactly the planted partition.
	for _, cfg := range []Config{
		{N: 1, Groups: 1, Seed: 7, RecordsPerLicense: 10},
		{N: 6, Groups: 2, Seed: 7, RecordsPerLicense: 20},
		{N: 12, Groups: 4, Seed: 9, RecordsPerLicense: 20},
		{N: 20, Groups: 5, Seed: 11, RecordsPerLicense: 10},
	} {
		w := MustGenerate(cfg)
		gr := overlap.GroupsOf(w.Corpus)
		if gr.NumGroups() != w.Config.Groups {
			t.Errorf("N=%d: found %d groups, planted %d", cfg.N, gr.NumGroups(), w.Config.Groups)
			continue
		}
		// Same-planted ⇔ same-found.
		for i := 0; i < cfg.N; i++ {
			for j := i + 1; j < cfg.N; j++ {
				samePlanted := w.PlantedGroups[i] == w.PlantedGroups[j]
				sameFound := gr.GroupOf(i) == gr.GroupOf(j)
				if samePlanted != sameFound {
					t.Errorf("N=%d: licenses %d,%d planted-same=%v found-same=%v",
						cfg.N, i, j, samePlanted, sameFound)
				}
			}
		}
	}
}

func TestGenerateParameterRanges(t *testing.T) {
	w := MustGenerate(Config{N: 10, Groups: 3, Seed: 3, RecordsPerLicense: 100})
	if got := len(w.Records); got != 1000 {
		t.Errorf("records = %d, want 1000", got)
	}
	for i := 0; i < w.Corpus.Len(); i++ {
		a := w.Corpus.License(i).Aggregate
		if a < 5000 || a > 20000 {
			t.Errorf("aggregate %d outside [5000,20000]", a)
		}
	}
	for _, r := range w.Records {
		if r.Count < 10 || r.Count > 30 {
			t.Errorf("count %d outside [10,30]", r.Count)
		}
		if r.Set.Empty() {
			t.Error("empty belongs-to set logged")
		}
	}
}

func TestGenerateRecordsStayWithinGroups(t *testing.T) {
	// Corollary 1.1 must hold by construction: no record's set spans two
	// planted groups — otherwise tree division would be impossible.
	w := MustGenerate(Config{N: 15, Groups: 4, Seed: 5, RecordsPerLicense: 200})
	for _, r := range w.Records {
		g := -1
		ok := true
		r.Set.ForEach(func(j int) bool {
			if g == -1 {
				g = w.PlantedGroups[j]
			} else if w.PlantedGroups[j] != g {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("record %v spans groups", r.Set)
		}
	}
}

func TestGeneratedWorkloadAuditsCleanly(t *testing.T) {
	// End-to-end: generated logs must divide and validate without error,
	// and grouped validation must agree with full validation.
	w := MustGenerate(Config{N: 10, Groups: 3, Seed: 13, RecordsPerLicense: 60})
	aud, err := core.NewAuditor(w.Corpus, w.Store())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	full, err := vtree.BuildRecords(w.Corpus.Len(), w.Records)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.ValidateAll(w.Corpus.Aggregates())
	if err != nil {
		t.Fatal(err)
	}
	// Violations can legitimately occur (the generator doesn't enforce
	// budgets); what must match is the verdict and the within-group sets.
	if rep.OK() != fullRes.OK() {
		t.Errorf("grouped OK=%v, full OK=%v", rep.OK(), fullRes.OK())
	}
}

func TestStorePanicsOnlyOnBug(t *testing.T) {
	w := MustGenerate(Config{N: 4, Groups: 2, Seed: 21, RecordsPerLicense: 10})
	s := w.Store()
	if s.Len() != len(w.Records) {
		t.Errorf("store has %d records, want %d", s.Len(), len(w.Records))
	}
}

func TestRequestsIsACopy(t *testing.T) {
	w := MustGenerate(Config{N: 4, Groups: 1, Seed: 2, RecordsPerLicense: 10})
	req := w.Requests()
	req[0].Count = 999999
	if w.Records[0].Count == 999999 {
		t.Error("Requests aliases Records")
	}
}

func TestGenerateQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{
			N:                 1 + int(seed%16&15),
			Groups:            1 + int((seed>>4)%5),
			Seed:              seed,
			RecordsPerLicense: 20,
		}
		if cfg.N < 1 {
			cfg.N = 1
		}
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		gr := overlap.GroupsOf(w.Corpus)
		if gr.Validate() != nil {
			return false
		}
		// w.Config echoes the normalized (clamped) configuration.
		return gr.NumGroups() == w.Config.Groups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSkewValidation(t *testing.T) {
	c := Config{N: 5, Skew: 0.5}
	if err := c.Normalize(); err == nil {
		t.Error("Skew in (0,1] accepted")
	}
	c = Config{N: 5, Skew: 1.2}
	if err := c.Normalize(); err != nil {
		t.Errorf("valid Skew rejected: %v", err)
	}
}

func TestSkewConcentratesIssuance(t *testing.T) {
	uniform := MustGenerate(Config{N: 12, Groups: 3, Seed: 9, RecordsPerLicense: 100})
	skewed := MustGenerate(Config{N: 12, Groups: 3, Seed: 9, RecordsPerLicense: 100, Skew: 2.0})

	// Measure concentration: fraction of records whose belongs-to set
	// includes the single most frequent license.
	top := func(w *Workload) float64 {
		freq := make([]int, w.Corpus.Len())
		for _, r := range w.Records {
			r.Set.ForEach(func(j int) bool { freq[j]++; return true })
		}
		max := 0
		for _, f := range freq {
			if f > max {
				max = f
			}
		}
		return float64(max) / float64(len(w.Records))
	}
	u, s := top(uniform), top(skewed)
	if s <= u {
		t.Errorf("skewed concentration %.2f not above uniform %.2f", s, u)
	}
	// Structure invariants hold regardless of skew.
	gr := overlap.GroupsOf(skewed.Corpus)
	if gr.NumGroups() != 3 {
		t.Errorf("groups = %d, want 3", gr.NumGroups())
	}
	for _, r := range skewed.Records {
		if r.Set.Empty() {
			t.Fatal("empty set under skew")
		}
	}
}
