// Package bitset provides the set algebra used throughout the validator.
//
// Two representations are provided:
//
//   - Mask: a set over a universe of at most 64 elements, backed by a single
//     uint64. License sets (the "S" of the validation equations) use Mask,
//     since the validation-equation machinery enumerates subsets of S and is
//     only tractable for small universes anyway.
//   - Set: an arbitrary-width bitset backed by a []uint64 word slice. Region
//     constraint values (sets of leaf regions in a taxonomy) use Set, since a
//     realistic region universe easily exceeds 64 leaves.
//
// Both are value types with no hidden sharing surprises: Mask is a plain
// integer; Set methods that mutate do so on the receiver and say so.
package bitset

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Mask is a subset of a universe of at most 64 elements. Element i is a
// member iff bit i is set. The zero Mask is the empty set.
//
// In the validator, element i corresponds to the redistribution license with
// zero-based index i; the paper's one-based L_D^j maps to element j-1.
type Mask uint64

// MaxMaskElems is the largest universe a Mask can represent.
const MaxMaskElems = 64

// MaskOf returns the Mask containing exactly the given elements.
// It panics if any element is outside [0, 64).
func MaskOf(elems ...int) Mask {
	var m Mask
	for _, e := range elems {
		m = m.With(e)
	}
	return m
}

// FullMask returns the set {0, 1, ..., n-1}. It panics unless 0 <= n <= 64.
func FullMask(n int) Mask {
	if n < 0 || n > MaxMaskElems {
		panic("bitset: FullMask size out of range: " + strconv.Itoa(n))
	}
	if n == MaxMaskElems {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// With returns m with element e added. It panics if e is outside [0, 64).
func (m Mask) With(e int) Mask {
	if e < 0 || e >= MaxMaskElems {
		panic("bitset: Mask element out of range: " + strconv.Itoa(e))
	}
	return m | 1<<uint(e)
}

// Without returns m with element e removed. It panics if e is outside [0, 64).
func (m Mask) Without(e int) Mask {
	if e < 0 || e >= MaxMaskElems {
		panic("bitset: Mask element out of range: " + strconv.Itoa(e))
	}
	return m &^ (1 << uint(e))
}

// Has reports whether element e is a member of m.
// Elements outside [0, 64) are never members.
func (m Mask) Has(e int) bool {
	if e < 0 || e >= MaxMaskElems {
		return false
	}
	return m&(1<<uint(e)) != 0
}

// Empty reports whether m is the empty set.
func (m Mask) Empty() bool { return m == 0 }

// Len returns the number of elements in m.
func (m Mask) Len() int { return bits.OnesCount64(uint64(m)) }

// Union returns m ∪ o.
func (m Mask) Union(o Mask) Mask { return m | o }

// Intersect returns m ∩ o.
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Diff returns m \ o.
func (m Mask) Diff(o Mask) Mask { return m &^ o }

// Intersects reports whether m ∩ o is non-empty.
func (m Mask) Intersects(o Mask) bool { return m&o != 0 }

// SubsetOf reports whether every element of m is also in o.
// The empty set is a subset of every set.
func (m Mask) SubsetOf(o Mask) bool { return m&^o == 0 }

// Min returns the smallest element of m, or -1 if m is empty.
func (m Mask) Min() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(m))
}

// Max returns the largest element of m, or -1 if m is empty.
func (m Mask) Max() int {
	if m == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(m))
}

// Elems returns the elements of m in increasing order.
func (m Mask) Elems() []int {
	out := make([]int, 0, m.Len())
	for w := uint64(m); w != 0; w &= w - 1 {
		out = append(out, bits.TrailingZeros64(w))
	}
	return out
}

// ForEach calls fn for each element of m in increasing order.
// It stops early if fn returns false.
func (m Mask) ForEach(fn func(e int) bool) {
	for w := uint64(m); w != 0; w &= w - 1 {
		if !fn(bits.TrailingZeros64(w)) {
			return
		}
	}
}

// Subsets calls fn for every non-empty subset of m, in an unspecified order.
// It stops early if fn returns false. A set of k elements has 2^k−1 non-empty
// subsets, exactly the summation range of the paper's validation equation
// (eq. 1), so this is the primitive behind brute-force LHS evaluation.
func (m Mask) Subsets(fn func(sub Mask) bool) {
	if m == 0 {
		return
	}
	// Standard sub-mask enumeration: walks all submasks of m descending.
	for sub := m; ; sub = (sub - 1) & m {
		if sub != 0 && !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
	}
}

// String renders m like "{1,3,4}" using one-based element names, matching the
// paper's L_D^j numbering. The empty set renders as "{}".
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	m.ForEach(func(e int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", e+1)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
