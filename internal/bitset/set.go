package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is an arbitrary-width bitset over elements [0, n). Unlike Mask it can
// represent universes wider than 64 elements; the region taxonomy's leaf sets
// use it. The zero value is an empty set over an empty universe.
//
// All binary operations require both operands to share the same universe
// width; they panic otherwise, since mixing universes is always a bug in this
// codebase (constraint values are only ever combined within one schema axis).
type Set struct {
	n     int
	words []uint64
}

// NewSet returns an empty set over the universe [0, n). It panics if n < 0.
func NewSet(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// SetOf returns a set over [0, n) containing exactly the given elements.
func SetOf(n int, elems ...int) Set {
	s := NewSet(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// FullSet returns the set {0, ..., n-1} over the universe [0, n).
func FullSet(n int) Set {
	s := NewSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits beyond the universe in the last word.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if r := s.n % wordBits; r != 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

// Universe returns the universe width n.
func (s Set) Universe() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{n: s.n, words: w}
}

// Add inserts element e. It panics if e is outside [0, n).
func (s Set) Add(e int) {
	s.check(e)
	s.words[e/wordBits] |= 1 << uint(e%wordBits)
}

// Remove deletes element e. It panics if e is outside [0, n).
func (s Set) Remove(e int) {
	s.check(e)
	s.words[e/wordBits] &^= 1 << uint(e%wordBits)
}

func (s Set) check(e int) {
	if e < 0 || e >= s.n {
		panic(fmt.Sprintf("bitset: element %d outside universe [0,%d)", e, s.n))
	}
}

// Has reports whether e is a member. Elements outside the universe are never
// members.
func (s Set) Has(e int) bool {
	if e < 0 || e >= s.n {
		return false
	}
	return s.words[e/wordBits]&(1<<uint(e%wordBits)) != 0
}

// Empty reports whether s has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

func (s Set) same(o Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, o.n))
	}
}

// Union returns a new set s ∪ o.
func (s Set) Union(o Set) Set {
	s.same(o)
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns a new set s ∩ o.
func (s Set) Intersect(o Set) Set {
	s.same(o)
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] &= w
	}
	return out
}

// Diff returns a new set s \ o.
func (s Set) Diff(o Set) Set {
	s.same(o)
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] &^= w
	}
	return out
}

// Intersects reports whether s ∩ o is non-empty.
func (s Set) Intersects(o Set) bool {
	s.same(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	s.same(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain the same elements over the same
// universe.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Elems returns the elements in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(e int) bool {
		out = append(out, e)
		return true
	})
	return out
}

// ForEach calls fn for each element in increasing order, stopping early if fn
// returns false.
func (s Set) ForEach(fn func(e int) bool) {
	for i, w := range s.words {
		for ; w != 0; w &= w - 1 {
			if !fn(i*wordBits + bits.TrailingZeros64(w)) {
				return
			}
		}
	}
}

// String renders the set like "{0,5,17}" (zero-based; Set elements are
// internal indexes, not paper license numbers).
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
