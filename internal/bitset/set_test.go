package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetEmpty(t *testing.T) {
	s := NewSet(130)
	if !s.Empty() || s.Len() != 0 {
		t.Error("new set should be empty")
	}
	if s.Universe() != 130 {
		t.Errorf("Universe = %d, want 130", s.Universe())
	}
}

func TestSetAddRemoveHas(t *testing.T) {
	s := NewSet(200)
	for _, e := range []int{0, 63, 64, 127, 128, 199} {
		s.Add(e)
	}
	for _, e := range []int{0, 63, 64, 127, 128, 199} {
		if !s.Has(e) {
			t.Errorf("Has(%d) = false after Add", e)
		}
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) after Remove")
	}
	if s.Has(-1) || s.Has(200) {
		t.Error("out-of-universe Has must be false")
	}
}

func TestSetAddPanicsOutside(t *testing.T) {
	s := NewSet(10)
	for _, e := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", e)
				}
			}()
			s.Add(e)
		}()
	}
}

func TestFullSetTrim(t *testing.T) {
	s := FullSet(70)
	if s.Len() != 70 {
		t.Errorf("FullSet(70).Len = %d, want 70", s.Len())
	}
	if s.Has(70) || s.Has(127) {
		t.Error("FullSet contains elements beyond the universe")
	}
}

func TestSetCloneIndependence(t *testing.T) {
	a := SetOf(100, 5, 50)
	b := a.Clone()
	b.Add(99)
	if a.Has(99) {
		t.Error("mutating clone affected original")
	}
	if !b.Has(5) || !b.Has(50) {
		t.Error("clone lost members")
	}
}

func TestSetBinaryOps(t *testing.T) {
	a := SetOf(128, 1, 2, 3, 100)
	b := SetOf(128, 3, 4, 100, 127)
	if got := a.Intersect(b); !got.Equal(SetOf(128, 3, 100)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got.Len() != 6 {
		t.Errorf("Union.Len = %d, want 6", got.Len())
	}
	if got := a.Diff(b); !got.Equal(SetOf(128, 1, 2)) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(SetOf(128, 7, 8)) {
		t.Error("Intersects disjoint = true")
	}
	if !SetOf(128, 3).SubsetOf(a) {
		t.Error("SubsetOf = false, want true")
	}
	if a.SubsetOf(b) {
		t.Error("SubsetOf = true, want false")
	}
}

func TestSetUniverseMismatchPanics(t *testing.T) {
	a, b := NewSet(64), NewSet(65)
	defer func() {
		if recover() == nil {
			t.Error("mixed-universe op did not panic")
		}
	}()
	a.Union(b)
}

func TestSetEqualDifferentUniverse(t *testing.T) {
	if NewSet(10).Equal(NewSet(11)) {
		t.Error("sets over different universes must not be Equal")
	}
}

func TestSetElemsAndString(t *testing.T) {
	s := SetOf(300, 256, 0, 70)
	got := s.Elems()
	want := []int{0, 70, 256}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	if str := s.String(); str != "{0,70,256}" {
		t.Errorf("String = %q", str)
	}
}

func TestSetForEachEarlyStop(t *testing.T) {
	s := FullSet(200)
	n := 0
	s.ForEach(func(int) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("visited %d, want 10", n)
	}
}

// randomSet draws a reproducible random set over [0,n).
func randomSet(r *rand.Rand, n int) Set {
	s := NewSet(n)
	for e := 0; e < n; e++ {
		if r.Intn(2) == 1 {
			s.Add(e)
		}
	}
	return s
}

func TestSetAlgebraQuick(t *testing.T) {
	const n = 150
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, n), randomSet(rr, n)
		u := FullSet(n)
		// De Morgan.
		if !u.Diff(a.Union(b)).Equal(u.Diff(a).Intersect(u.Diff(b))) {
			return false
		}
		// Inclusion-exclusion on cardinality.
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		// Subset laws.
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		return a.Intersects(b) == !a.Intersect(b).Empty()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
