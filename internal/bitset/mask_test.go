package bitset

import (
	"math/bits"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaskOfAndHas(t *testing.T) {
	m := MaskOf(0, 2, 5)
	for e := 0; e < 8; e++ {
		want := e == 0 || e == 2 || e == 5
		if got := m.Has(e); got != want {
			t.Errorf("Has(%d) = %v, want %v", e, got, want)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
}

func TestMaskHasOutOfRange(t *testing.T) {
	m := ^Mask(0)
	if m.Has(-1) || m.Has(64) || m.Has(1000) {
		t.Error("out-of-range elements must never be members")
	}
}

func TestFullMask(t *testing.T) {
	cases := []struct {
		n    int
		want Mask
	}{
		{0, 0},
		{1, 1},
		{3, 0b111},
		{64, ^Mask(0)},
	}
	for _, c := range cases {
		if got := FullMask(c.n); got != c.want {
			t.Errorf("FullMask(%d) = %x, want %x", c.n, got, c.want)
		}
	}
}

func TestFullMaskPanics(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FullMask(%d) did not panic", n)
				}
			}()
			FullMask(n)
		}()
	}
}

func TestMaskWithWithout(t *testing.T) {
	m := Mask(0).With(3).With(7).Without(3)
	if m != MaskOf(7) {
		t.Errorf("got %v, want {8}", m)
	}
	// Without of an absent element is a no-op.
	if m.Without(5) != m {
		t.Error("Without(absent) changed the mask")
	}
}

func TestMaskElemPanics(t *testing.T) {
	for _, e := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("With(%d) did not panic", e)
				}
			}()
			Mask(0).With(e)
		}()
	}
}

func TestMaskMinMax(t *testing.T) {
	if Mask(0).Min() != -1 || Mask(0).Max() != -1 {
		t.Error("empty mask Min/Max should be -1")
	}
	m := MaskOf(3, 17, 60)
	if m.Min() != 3 {
		t.Errorf("Min = %d, want 3", m.Min())
	}
	if m.Max() != 60 {
		t.Errorf("Max = %d, want 60", m.Max())
	}
}

func TestMaskElemsOrdered(t *testing.T) {
	m := MaskOf(9, 1, 33, 2)
	got := m.Elems()
	want := []int{1, 2, 9, 33}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestMaskForEachEarlyStop(t *testing.T) {
	m := FullMask(10)
	n := 0
	m.ForEach(func(e int) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("visited %d elements, want 4", n)
	}
}

func TestMaskSubsetsCount(t *testing.T) {
	// A k-element set has exactly 2^k - 1 non-empty subsets.
	for k := 0; k <= 12; k++ {
		m := FullMask(k)
		count := 0
		m.Subsets(func(sub Mask) bool {
			if sub.Empty() {
				t.Fatal("Subsets yielded the empty set")
			}
			if !sub.SubsetOf(m) {
				t.Fatalf("Subsets yielded %v not within %v", sub, m)
			}
			count++
			return true
		})
		want := 1<<uint(k) - 1
		if count != want {
			t.Errorf("k=%d: %d subsets, want %d", k, count, want)
		}
	}
}

func TestMaskSubsetsDistinct(t *testing.T) {
	m := MaskOf(0, 3, 5, 9)
	seen := map[Mask]bool{}
	m.Subsets(func(sub Mask) bool {
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 15 {
		t.Errorf("got %d distinct subsets, want 15", len(seen))
	}
}

func TestMaskSubsetsEarlyStop(t *testing.T) {
	n := 0
	FullMask(20).Subsets(func(Mask) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d subsets, want 5", n)
	}
}

func TestMaskString(t *testing.T) {
	if got := MaskOf(0, 1, 3).String(); got != "{1,2,4}" {
		t.Errorf("String = %q, want {1,2,4} (one-based)", got)
	}
	if got := Mask(0).String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

func TestMaskAlgebraQuick(t *testing.T) {
	// De Morgan within a fixed 64-element universe, plus subset laws.
	u := ^Mask(0)
	laws := func(a, b uint64) bool {
		x, y := Mask(a), Mask(b)
		if u.Diff(x.Union(y)) != u.Diff(x).Intersect(u.Diff(y)) {
			return false
		}
		if u.Diff(x.Intersect(y)) != u.Diff(x).Union(u.Diff(y)) {
			return false
		}
		if !x.Intersect(y).SubsetOf(x) || !x.SubsetOf(x.Union(y)) {
			return false
		}
		if x.Intersects(y) != !x.Intersect(y).Empty() {
			return false
		}
		if x.Union(y).Len() != x.Len()+y.Len()-x.Intersect(y).Len() {
			return false
		}
		return true
	}
	if err := quick.Check(laws, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskLenMatchesPopcount(t *testing.T) {
	f := func(a uint64) bool {
		return Mask(a).Len() == bits.OnesCount64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskElemsRoundTripQuick(t *testing.T) {
	f := func(a uint64) bool {
		m := Mask(a)
		elems := m.Elems()
		if !sort.IntsAreSorted(elems) {
			return false
		}
		return MaskOf(elems...) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaskSubsets20(b *testing.B) {
	m := FullMask(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		m.Subsets(func(Mask) bool { n++; return true })
		if n != 1<<20-1 {
			b.Fatal("bad count")
		}
	}
}
