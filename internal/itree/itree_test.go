package itree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func entries(spans ...[2]int64) []Entry {
	out := make([]Entry, len(spans))
	for i, s := range spans {
		out[i] = Entry{Iv: interval.New(s[0], s[1]), ID: i}
	}
	return out
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build([]Entry{{Iv: interval.Empty(), ID: 0}}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustBuild(nil)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Stab(5); got != nil {
		t.Errorf("Stab on empty = %v", got)
	}
	if got := tr.Containing(interval.New(1, 2)); got != nil {
		t.Errorf("Containing on empty = %v", got)
	}
}

func TestStabSmall(t *testing.T) {
	tr := MustBuild(entries([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{20, 30}))
	cases := map[int64][]int{
		-1: nil,
		0:  {0},
		7:  {0, 1},
		12: {1},
		25: {2},
		31: nil,
	}
	for p, want := range cases {
		got := tr.Stab(p)
		sort.Ints(got)
		if !equalInts(got, want) {
			t.Errorf("Stab(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestContainingSmall(t *testing.T) {
	tr := MustBuild(entries([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{0, 30}))
	got := tr.Containing(interval.New(6, 9))
	sort.Ints(got)
	if !equalInts(got, []int{0, 1, 2}) {
		t.Errorf("Containing([6,9]) = %v", got)
	}
	got = tr.Containing(interval.New(6, 12))
	sort.Ints(got)
	if !equalInts(got, []int{1, 2}) {
		t.Errorf("Containing([6,12]) = %v", got)
	}
	if got := tr.Containing(interval.Empty()); got != nil {
		t.Errorf("Containing(∅) = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Linear oracles.
func linStab(es []Entry, p int64) []int {
	var out []int
	for _, e := range es {
		if e.Iv.ContainsPoint(p) {
			out = append(out, e.ID)
		}
	}
	return out
}

func linContaining(es []Entry, q interval.Interval) []int {
	var out []int
	for _, e := range es {
		if e.Iv.Contains(q) {
			out = append(out, e.ID)
		}
	}
	return out
}

func linOverlapping(es []Entry, q interval.Interval) []int {
	var out []int
	for _, e := range es {
		if e.Iv.Overlaps(q) {
			out = append(out, e.ID)
		}
	}
	return out
}

func sameIDs(a, b []int) bool {
	sort.Ints(a)
	sort.Ints(b)
	return equalInts(a, b)
}

func TestQueriesMatchLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300)
		es := make([]Entry, n)
		for i := range es {
			lo := r.Int63n(1000)
			es[i] = Entry{Iv: interval.New(lo, lo+r.Int63n(200)), ID: i}
		}
		tr, err := Build(es)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			p := r.Int63n(1200)
			if !sameIDs(tr.Stab(p), linStab(es, p)) {
				return false
			}
			lo := r.Int63n(1000)
			q := interval.New(lo, lo+r.Int63n(150))
			if !sameIDs(tr.Containing(q), linContaining(es, q)) {
				return false
			}
			if !sameIDs(tr.Overlapping(q), linOverlapping(es, q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	es := make([]Entry, 4096)
	for i := range es {
		lo := r.Int63n(1 << 20)
		es[i] = Entry{Iv: interval.New(lo, lo+r.Int63n(1<<10)), ID: i}
	}
	tr := MustBuild(es)
	if h := tr.Height(); h > 2*13 { // generous 2·log2(4096)
		t.Errorf("height = %d for 4096 random intervals", h)
	}
}

func TestDuplicateAndNestedIntervals(t *testing.T) {
	tr := MustBuild(entries(
		[2]int64{0, 100}, [2]int64{0, 100}, // duplicates
		[2]int64{10, 90}, [2]int64{40, 60}, // nested
		[2]int64{50, 50}, // degenerate point
	))
	got := tr.Stab(50)
	sort.Ints(got)
	if !equalInts(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("Stab(50) = %v", got)
	}
	got = tr.Containing(interval.New(45, 55))
	sort.Ints(got)
	if !equalInts(got, []int{0, 1, 2, 3}) {
		t.Errorf("Containing([45,55]) = %v", got)
	}
}

func BenchmarkContainingVsLinear(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const n = 5000
	es := make([]Entry, n)
	for i := range es {
		lo := r.Int63n(1 << 20)
		es[i] = Entry{Iv: interval.New(lo, lo+r.Int63n(1<<12)), ID: i}
	}
	tr := MustBuild(es)
	queries := make([]interval.Interval, 64)
	for i := range queries {
		lo := r.Int63n(1 << 20)
		queries[i] = interval.New(lo, lo+r.Int63n(1<<10))
	}
	b.Run("itree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Containing(queries[i%len(queries)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linContaining(es, queries[i%len(queries)])
		}
	})
}
