// Package itree implements a static centered interval tree — the
// single-dimension counterpart of internal/rtree for instance validation.
//
// When a schema's selective axis is an interval (the validity period in
// the paper's licenses), a centered interval tree over that axis answers
// "which licenses' periods contain the query period?" in O(log n + k) and
// the remaining axes are filtered per candidate. internal/engine uses the
// R-tree (it handles mixed axes natively); this package exists as the
// classic alternative and is benchmarked against it (DESIGN.md ablations).
//
// The tree is built once from a fixed entry set (Build); licenses change
// rarely (acquisitions), so rebuilds are cheap relative to query volume.
package itree

import (
	"fmt"
	"sort"

	"repro/internal/interval"
)

// Entry is one indexed interval with its payload id (a corpus index).
type Entry struct {
	Iv interval.Interval
	ID int
}

// Tree is an immutable centered interval tree. The zero value is an empty
// tree; Build constructs populated ones.
type Tree struct {
	root *node
	size int
}

// node holds the intervals crossing its center, sorted two ways for
// early-exit scans, plus subtrees for intervals entirely left/right.
type node struct {
	center int64
	byLo   []Entry // ascending Iv.Lo
	byHi   []Entry // descending Iv.Hi
	left   *node
	right  *node
}

// Build constructs the tree. Empty intervals are rejected: they can never
// contain anything and would poison the median selection.
func Build(entries []Entry) (*Tree, error) {
	for _, e := range entries {
		if e.Iv.IsEmpty() {
			return nil, fmt.Errorf("itree: empty interval for id %d", e.ID)
		}
	}
	es := append([]Entry(nil), entries...)
	return &Tree{root: build(es), size: len(es)}, nil
}

// MustBuild is Build for trusted inputs; it panics on error.
func MustBuild(entries []Entry) *Tree {
	t, err := Build(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of indexed intervals.
func (t *Tree) Len() int { return t.size }

func build(entries []Entry) *node {
	if len(entries) == 0 {
		return nil
	}
	// Median of endpoint midpoints keeps the tree balanced enough for the
	// classic O(log n) height argument without full endpoint sorting.
	mids := make([]int64, len(entries))
	for i, e := range entries {
		mids[i] = e.Iv.Lo + (e.Iv.Hi-e.Iv.Lo)/2
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })
	center := mids[len(mids)/2]

	n := &node{center: center}
	var left, right []Entry
	for _, e := range entries {
		switch {
		case e.Iv.Hi < center:
			left = append(left, e)
		case e.Iv.Lo > center:
			right = append(right, e)
		default:
			n.byLo = append(n.byLo, e)
		}
	}
	n.byHi = append([]Entry(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].Iv.Lo < n.byLo[j].Iv.Lo })
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].Iv.Hi > n.byHi[j].Iv.Hi })
	n.left = build(left)
	n.right = build(right)
	return n
}

// Stab returns the ids of all intervals containing the point p, in no
// particular order.
func (t *Tree) Stab(p int64) []int {
	var out []int
	for n := t.root; n != nil; {
		if p < n.center {
			// Crossing intervals contain p iff their Lo ≤ p.
			for _, e := range n.byLo {
				if e.Iv.Lo > p {
					break
				}
				out = append(out, e.ID)
			}
			n = n.left
		} else if p > n.center {
			for _, e := range n.byHi {
				if e.Iv.Hi < p {
					break
				}
				out = append(out, e.ID)
			}
			n = n.right
		} else {
			// p == center: every crossing interval contains it.
			for _, e := range n.byLo {
				out = append(out, e.ID)
			}
			break
		}
	}
	return out
}

// Containing returns the ids of all intervals that fully contain q — the
// instance-validation primitive. Implemented as a stab at q.Lo filtered by
// Hi ≥ q.Hi (an interval containing q must contain its left endpoint).
// Empty q is contained in every interval by convention; Containing then
// returns nil, matching the engine's rejection of empty issuances.
func (t *Tree) Containing(q interval.Interval) []int {
	if q.IsEmpty() {
		return nil
	}
	var out []int
	for n := t.root; n != nil; {
		p := q.Lo
		if p < n.center {
			for _, e := range n.byLo {
				if e.Iv.Lo > p {
					break
				}
				if e.Iv.Hi >= q.Hi {
					out = append(out, e.ID)
				}
			}
			n = n.left
		} else if p > n.center {
			for _, e := range n.byHi {
				if e.Iv.Hi < p {
					break
				}
				if e.Iv.Hi >= q.Hi { // Lo ≤ center ≤ p already
					out = append(out, e.ID)
				}
			}
			n = n.right
		} else {
			for _, e := range n.byLo {
				if e.Iv.Hi >= q.Hi {
					out = append(out, e.ID)
				}
			}
			break
		}
	}
	return out
}

// Overlapping returns the ids of all intervals intersecting q.
func (t *Tree) Overlapping(q interval.Interval) []int {
	if q.IsEmpty() {
		return nil
	}
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if q.Hi < n.center {
			for _, e := range n.byLo {
				if e.Iv.Lo > q.Hi {
					break
				}
				out = append(out, e.ID)
			}
			walk(n.left)
		} else if q.Lo > n.center {
			for _, e := range n.byHi {
				if e.Iv.Hi < q.Lo {
					break
				}
				out = append(out, e.ID)
			}
			walk(n.right)
		} else {
			// q spans the center: all crossing intervals overlap q.
			for _, e := range n.byLo {
				out = append(out, e.ID)
			}
			walk(n.left)
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// Height returns the tree height (0 for an empty tree), for balance tests.
func (t *Tree) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}
