package drm_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every runnable example end-to-end via `go run`,
// guarding them against API drift and runtime regressions. The examples
// are deterministic, so spot-checked output lines are stable.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are subprocess-heavy; skipped with -short")
	}
	expects := map[string][]string{
		"quickstart": {
			"2 groups: [{1,2,4} {3,5}]",
			"evaluated 10 equations",
			"equation validator accepted L_U^2",
		},
		"multidistributor": {
			"asia-media's corpus has 2 disconnected groups",
			"Offline audits (geometric validator)",
		},
		"audit": {
			"theoretical gain (eq 3):",
			"measured gain:",
		},
		"streaming": {
			"bridges L1's and L2's groups → merge",
			"final grouping: [{1,2,3,5} {4}]",
		},
		"paperlicenses": {
			"groups: [{1,2,4} {3,5}]   gain: 3.1x",
			"after acquiring L_D^6",
		},
		"remediation": {
			"top up L_D^2 by 200 counts",
			"re-audit: ok=true",
		},
		"federation": {
			"federated audit matches the single-authority audit exactly",
		},
		"capacityplanning": {
			"licenses whose expiry splits their group: {1}",
			"equation count drops from 10 to 5",
		},
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		if !entry.IsDir() {
			continue
		}
		name := entry.Name()
		want, ok := expects[name]
		if !ok {
			t.Errorf("example %q has no smoke expectations — add them here", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, w := range want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}
