// Top-level benchmarks regenerate every figure of the paper's evaluation
// (§5) as testing.B benchmarks, plus the ablations DESIGN.md calls out.
// Run them all with:
//
//	go test -bench=. -benchmem .
//
// Figure mapping:
//
//	BenchmarkFig6Groups      — fig 6 (groups vs N; groups reported as a metric)
//	BenchmarkFig7Original    — fig 7, undivided validator V_T
//	BenchmarkFig7Geometric   — fig 7, proposed validator V_T (and V_T+D_T via sub-bench)
//	BenchmarkFig8Gain        — fig 8 (theoretical gain reported as a metric)
//	BenchmarkFig9Insert      — fig 9, single-record insertion
//	BenchmarkFig9Division    — fig 9, one-time division D_T
//	BenchmarkFig10Storage    — fig 10 (bytes reported as metrics)
//
// Ablations:
//
//	BenchmarkAblationTraversal     — validation-tree pruned walk vs direct log
//	                                 scan vs sum-over-subsets DP
//	BenchmarkAblationParallel      — serial vs parallel per-group validation
//	BenchmarkAblationIntraGroup    — mask-sharded single-group validation
//	BenchmarkAblationFlatSumSubsets — pointer tree vs flattened SoA layout
//	BenchmarkAblationGrouping      — Algorithm 3 DFS vs incremental union-find
package drm_test

import (
	"fmt"
	"testing"

	"math/rand"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/itree"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/rtree"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// benchWorkload memoises generated workloads across benchmarks.
var benchWorkloads = map[int]*workload.Workload{}

func benchWorkload(b *testing.B, n int) *workload.Workload {
	b.Helper()
	if w, ok := benchWorkloads[n]; ok {
		return w
	}
	cfg := workload.Default(n)
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkloads[n] = w
	return w
}

func benchTree(b *testing.B, w *workload.Workload) *vtree.Tree {
	b.Helper()
	t, err := vtree.BuildRecords(w.Corpus.Len(), w.Records)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func benchDivided(b *testing.B, w *workload.Workload) ([]*core.GroupTree, overlap.Grouping) {
	b.Helper()
	gr := overlap.GroupsOf(w.Corpus)
	trees, err := core.Divide(benchTree(b, w).Clone(), gr, w.Corpus.Aggregates())
	if err != nil {
		b.Fatal(err)
	}
	return trees, gr
}

// fig7Ns are the sweep points benchmarked per figure; the full 1..35 sweep
// lives in cmd/drmbench.
var fig7OriginalNs = []int{8, 12, 16, 20}
var fig7GeometricNs = []int{8, 12, 16, 20, 28, 35}

func BenchmarkFig6Groups(b *testing.B) {
	for _, n := range []int{5, 15, 25, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			var groups int
			for i := 0; i < b.N; i++ {
				groups = overlap.GroupsOf(w.Corpus).NumGroups()
			}
			b.ReportMetric(float64(groups), "groups")
		})
	}
}

func BenchmarkFig7Original(b *testing.B) {
	for _, n := range fig7OriginalNs {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			tree := benchTree(b, w)
			agg := w.Corpus.Aggregates()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.ValidateAll(agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7Geometric(b *testing.B) {
	for _, n := range fig7GeometricNs {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			trees, _ := benchDivided(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Validate(trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7GeometricWithDivision times V_T + D_T: grouping, division,
// and validation together, on a pre-built tree clone.
func BenchmarkFig7GeometricWithDivision(b *testing.B) {
	for _, n := range []int{12, 20, 28, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			tree := benchTree(b, w)
			agg := w.Corpus.Aggregates()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clone := tree.Clone() // excluded: division consumes the tree
				b.StartTimer()
				gr := overlap.GroupsOf(w.Corpus)
				trees, err := core.Divide(clone, gr, agg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Validate(trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8Gain(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			gr := overlap.GroupsOf(w.Corpus)
			b.ResetTimer()
			var gain float64
			for i := 0; i < b.N; i++ {
				gain = core.Gain(gr)
			}
			b.ReportMetric(gain, "gain")
		})
	}
}

func BenchmarkFig9Insert(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			tree := benchTree(b, w)
			recs := w.Records
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tree.InsertRecord(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9Division(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			tree := benchTree(b, w)
			gr := overlap.GroupsOf(w.Corpus)
			agg := w.Corpus.Aggregates()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clone := tree.Clone()
				b.StartTimer()
				if _, err := core.Divide(clone, gr, agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig10Storage(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := benchWorkload(b, n)
			trees, _ := benchDivided(b, w)
			original := benchTree(b, w)
			b.ResetTimer()
			var origBytes, divBytes int64
			for i := 0; i < b.N; i++ {
				origBytes = original.Stats().Bytes
				divBytes = 0
				for _, gt := range trees {
					divBytes += gt.Tree.Stats().Bytes
				}
			}
			b.ReportMetric(float64(origBytes), "orig-bytes")
			b.ReportMetric(float64(divBytes), "divided-bytes")
		})
	}
}

// BenchmarkAblationTraversal compares the three ways to evaluate all
// validation equations at N=16: the [10] validation tree, a direct
// per-equation log scan, and the sum-over-subsets DP.
func BenchmarkAblationTraversal(b *testing.B) {
	const n = 16
	w := benchWorkload(b, n)
	agg := w.Corpus.Aggregates()
	b.Run("tree", func(b *testing.B) {
		tree := benchTree(b, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tree.ValidateAll(agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-scan", func(b *testing.B) {
		recs := logstore.Compact(w.Records) // give the scan its best case
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.DirectValidate(n, recs, agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sos-dp", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SOSValidate(n, w.Records, agg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallel compares serial and parallel per-group
// validation at N=35 (5 groups of 7).
func BenchmarkAblationParallel(b *testing.B) {
	cfg := workload.Default(35)
	cfg.Groups = 5
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gr := overlap.GroupsOf(w.Corpus)
	trees, err := core.Divide(benchTree(b, w).Clone(), gr, w.Corpus.Aggregates())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Validate(trees); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ValidateParallel(trees, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIntraGroup measures intra-group sharded validation on a
// single-group corpus — the regime where per-group parallelism (above) is
// useless because there is nothing to fan out over. The mask space of the
// one group's 2^N−1 equations is split into contiguous shards across
// workers; the report is byte-identical at every setting (asserted by the
// property tests in internal/core). Speed-ups materialise only with real
// cores: on a single-CPU machine all worker counts time alike.
func BenchmarkAblationIntraGroup(b *testing.B) {
	ns := []int{20, 22, 24, 26}
	if testing.Short() {
		ns = []int{20}
	}
	for _, n := range ns {
		cfg := workload.Default(n)
		cfg.Groups = 1
		cfg.RecordsPerLicense = 50 // the cost under study is per-equation, not replay
		w, err := workload.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		trees, err := core.Divide(benchTree(b, w).Clone(), overlap.GroupsOf(w.Corpus), w.Corpus.Aggregates())
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("N=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ValidateParallel(trees, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationIntraGroupInstrumented reruns the intra-group ablation
// with a live metrics registry wired into vtree/core, quantifying the
// observability overhead. Recording happens once per run (never per
// equation), so the instrumented/uninstrumented delta should sit well
// under the 5% the design budgets.
func BenchmarkAblationIntraGroupInstrumented(b *testing.B) {
	n := 20
	cfg := workload.Default(n)
	cfg.Groups = 1
	cfg.RecordsPerLicense = 50
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	trees, err := core.Divide(benchTree(b, w).Clone(), overlap.GroupsOf(w.Corpus), w.Corpus.Aggregates())
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		wire func()
	}{
		{"nil-hooks", func() { vtree.M, core.M = vtree.Metrics{}, core.Metrics{} }},
		{"instrumented", func() {
			reg := obs.NewRegistry()
			vtree.Instrument(reg)
			core.Instrument(reg)
		}},
	} {
		variant.wire()
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", variant.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.ValidateParallel(trees, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	vtree.M, core.M = vtree.Metrics{}, core.Metrics{}
}

// BenchmarkAblationFlatSumSubsets compares one C⟨S⟩ evaluation on the
// pointer tree against the flattened SoA layout backing the sharded
// validator (sums are bit-identical; only memory traversal differs).
func BenchmarkAblationFlatSumSubsets(b *testing.B) {
	w := benchWorkload(b, 20)
	tree := benchTree(b, w)
	flat := tree.Flatten()
	full := bitset.FullMask(20)
	b.Run("pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.SumSubsets(full)
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			flat.SumSubsets(full)
		}
	})
}

// BenchmarkAblationGrouping compares the paper's O(N²) DFS grouping with
// the incremental union-find Grouper at N=35.
func BenchmarkAblationGrouping(b *testing.B) {
	w := benchWorkload(b, 35)
	b.Run("dfs-matrix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			overlap.GroupsOf(w.Corpus)
		}
	})
	b.Run("union-find", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			overlap.NewGrouper(w.Corpus).Grouping()
		}
	})
	b.Run("mask-closure", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			overlap.GroupsMask(overlap.BuildMaskAdjacency(w.Corpus))
		}
	})
}

// BenchmarkAblationSkew compares validation cost on uniform vs Zipf-skewed
// issuance at N=20: skew concentrates the log on few belongs-to sets,
// shrinking the validation tree and the per-equation traversals.
func BenchmarkAblationSkew(b *testing.B) {
	for _, skew := range []float64{0, 1.5, 3.0} {
		name := "uniform"
		if skew > 0 {
			name = fmt.Sprintf("zipf-%.1f", skew)
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default(20)
			cfg.Skew = skew
			w, err := workload.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			gr := overlap.GroupsOf(w.Corpus)
			tree, err := vtree.BuildRecords(20, w.Records)
			if err != nil {
				b.Fatal(err)
			}
			trees, err := core.Divide(tree, gr, w.Corpus.Aggregates())
			if err != nil {
				b.Fatal(err)
			}
			var nodes int
			for _, gt := range trees {
				nodes += gt.Tree.Stats().Nodes
			}
			b.ReportMetric(float64(nodes), "tree-nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Validate(trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlanner compares fixed-strategy validation against the
// cost-model planner on a dense instance (one 18-license group, dense log)
// where the sum-over-subsets DP dominates the tree.
func BenchmarkAblationPlanner(b *testing.B) {
	cfg := workload.Default(18)
	cfg.Groups = 1
	cfg.RecordsPerLicense = 2000 // dense: many distinct sets
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gr := overlap.GroupsOf(w.Corpus)
	trees, err := core.Divide(benchTree(b, w).Clone(), gr, w.Corpus.Aggregates())
	if err != nil {
		b.Fatal(err)
	}
	fixed := func(s core.Strategy) []core.GroupPlan {
		plans := make([]core.GroupPlan, len(trees))
		for k := range plans {
			plans[k] = core.GroupPlan{Group: k, Strategy: s}
		}
		return plans
	}
	b.Run("tree", func(b *testing.B) {
		plans := fixed(core.StrategyTree)
		for i := 0; i < b.N; i++ {
			if _, err := core.ValidateWithPlan(trees, plans); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sos", func(b *testing.B) {
		plans := fixed(core.StrategySOS)
		for i := 0; i < b.N; i++ {
			if _, err := core.ValidateWithPlan(trees, plans); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planned", func(b *testing.B) {
		plans := core.Plan(trees)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.ValidateWithPlan(trees, plans); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOnlineHeadroom compares per-issuance aggregate checking
// with and without grouping at N=20: the global check enumerates 2^(N−k)
// equations, the group-local one only 2^(N_k−k) — the same exponential
// separation as the offline audit, paid on every single issuance.
func BenchmarkAblationOnlineHeadroom(b *testing.B) {
	w := benchWorkload(b, 20)
	tree := benchTree(b, w)
	agg := w.Corpus.Aggregates()
	base := w.Records[0].Set

	b.Run("global", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tree.Headroom(base, agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grouped", func(b *testing.B) {
		ia, err := core.NewIncrementalAuditor(w.Corpus)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range w.Records {
			if err := ia.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ia.Headroom(base); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInstanceValidation compares the three ways to answer
// "which licenses contain this issued rectangle" on a 4-interval-axis
// corpus: linear scan (Corpus.BelongsTo), R-tree over all axes, and a
// centered interval tree on axis 0 with residual filtering. Corpus sizes
// beyond the paper's N ≤ 64 regime show where the indexes pay off —
// the multi-content catalogs internal/engine serves.
func BenchmarkAblationInstanceValidation(b *testing.B) {
	w := benchWorkload(b, 35)
	corpus := w.Corpus
	schema := corpus.Schema()

	rt := rtree.New(schema, rtree.DefaultMaxEntries)
	entries := make([]itree.Entry, corpus.Len())
	for i := 0; i < corpus.Len(); i++ {
		r := corpus.License(i).Rect
		if err := rt.Insert(r, i); err != nil {
			b.Fatal(err)
		}
		entries[i] = itree.Entry{Iv: r.Value(0).Interval(), ID: i}
	}
	it, err := itree.Build(entries)
	if err != nil {
		b.Fatal(err)
	}

	// Queries: shrunken rectangles inside random licenses (always hit).
	rng := rand.New(rand.NewSource(3))
	queries := make([]geometry.Rect, 128)
	for qi := range queries {
		l := corpus.License(rng.Intn(corpus.Len())).Rect
		vals := make([]geometry.Value, schema.Dims())
		for d := 0; d < schema.Dims(); d++ {
			iv := l.Value(d).Interval()
			lo := iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
			vals[d] = geometry.IntervalValue(interval.New(lo, lo+(iv.Hi-lo)/2))
		}
		queries[qi] = geometry.MustRect(schema, vals...)
	}

	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			corpus.BelongsTo(queries[i%len(queries)])
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt.SearchContaining(queries[i%len(queries)])
		}
	})
	b.Run("itree-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			for _, id := range it.Containing(q.Value(0).Interval()) {
				_ = corpus.License(id).Rect.Contains(q)
			}
		}
	})
}
