package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-tiers", "2", "-width", "2", "-contents", "1",
		"-days", "4", "-requests", "50", "-audit-every", "2", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"simulated 4 days", "audits:", "distributor", "tier1/d1", "total:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Online mode: zero violated equations.
	if !strings.Contains(s, "audits: 4 passes, 0 violated equations") &&
		!strings.Contains(s, " 0 violated equations") {
		t.Errorf("online run reported violations:\n%s", s)
	}
}

func TestRunOfflineMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-tiers", "1", "-width", "1", "-contents", "1", "-grants", "2",
		"-days", "30", "-requests", "300", "-audit-every", "15",
		"-mode", "offline", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "offline mode") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "weird"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-tiers", "-2"}, &out); err == nil {
		t.Error("negative tiers accepted")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
