// Command drmsim runs a deterministic multi-tier DRM distribution
// simulation (internal/simulate) and prints the per-corpus outcome: how
// much was issued, what instance/aggregate validation rejected, how the
// overlap groups formed, and what the audits found.
//
// Usage:
//
//	drmsim -tiers 2 -width 3 -contents 2 -days 30 -requests 200 -mode online
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/simulate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drmsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("drmsim", flag.ContinueOnError)
	var (
		tiers    = fs.Int("tiers", 2, "distribution depth below the owner")
		width    = fs.Int("width", 3, "distributors per tier")
		contents = fs.Int("contents", 2, "content items")
		grants   = fs.Int("grants", 3, "redistribution licenses per tier-1 distributor per content")
		days     = fs.Int("days", 30, "simulated days")
		requests = fs.Int("requests", 200, "usage requests per day")
		auditEvy = fs.Int("audit-every", 10, "audit all corpora every N days")
		mode     = fs.String("mode", "online", "aggregate validation mode: online or offline")
		seed     = fs.Int64("seed", 1, "PRNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m engine.Mode
	switch *mode {
	case "online":
		m = engine.ModeOnline
	case "offline":
		m = engine.ModeOffline
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	res, err := simulate.Run(simulate.Config{
		Tiers:                *tiers,
		Width:                *width,
		Contents:             *contents,
		GrantsPerDistributor: *grants,
		Days:                 *days,
		Requests:             *requests,
		AuditEvery:           *auditEvy,
		Mode:                 m,
		Seed:                 *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "simulated %d days × %d requests across %d tiers (%s mode)\n",
		res.Config.Days, res.Config.Requests, res.Config.Tiers, m)
	fmt.Fprintf(out, "audits: %d passes, %d violated equations\n", res.Audits, res.AuditViolations)
	if res.AuditViolations > 0 {
		fmt.Fprint(out, "audit timeline:")
		for _, p := range res.Timeline {
			fmt.Fprintf(out, " day%d=%d", p.Day, p.Violations)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)

	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distributor\tcontent\tlicenses\tgroups\tgain\tissued\tcounts\trej.inst\trej.aggr\tviolations")
	var totalIssued int
	var totalCounts int64
	for _, d := range res.Distributors {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1fx\t%d\t%d\t%d\t%d\t%d\n",
			d.Name, d.Content, d.Licenses, d.Groups, d.Gain,
			d.Stats.Issued, d.Stats.IssuedCounts,
			d.Stats.RejectedInstance, d.Stats.RejectedAggregate, d.Violations)
		totalIssued += d.Stats.Issued
		totalCounts += d.Stats.IssuedCounts
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntotal: %d licenses issued carrying %d permission counts\n", totalIssued, totalCounts)
	return nil
}
