package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidAndInvalid(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(good, []byte(`{"traceEvents":[`+
		`{"name":"p","ph":"M","pid":0},`+
		`{"name":"root","ph":"X","ts":0,"dur":5,"pid":0,"tid":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"X"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("invalid file accepted")
	}
	if err := run([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no-args invocation accepted")
	}
}
