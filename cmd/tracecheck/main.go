// Command tracecheck validates Chrome Trace Event JSON files written by
// drmaudit/drmbench -trace (or GET /debug/traces?format=chrome), using
// the same decoder the packages test against — no third-party schema
// tooling. It prints the duration-event count per file and exits
// non-zero on the first invalid one, so CI can gate on trace-export
// well-formedness before uploading the artifact.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: tracecheck trace.json [more.json ...]")
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		n, err := trace.DecodeChrome(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if n == 0 {
			return fmt.Errorf("%s: no duration events", path)
		}
		fmt.Printf("%s: ok (%d duration events)\n", path, n)
	}
	return nil
}
