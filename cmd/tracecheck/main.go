// Command tracecheck validates Chrome Trace Event JSON files written by
// drmaudit/drmbench -trace (or GET /debug/traces?format=chrome, or the
// router's merged GET /v1/cluster/traces/{id}), using the same decoder
// the packages test against — no third-party schema tooling. It prints
// the duration-event and process-lane counts per file and exits
// non-zero on the first invalid one, so CI can gate on trace-export
// well-formedness before uploading the artifact.
//
// Usage:
//
//	tracecheck [-min-procs N] trace.json [more.json ...]
//
// -min-procs asserts every file carries at least N distinct process
// lanes — the check that a merged distributed trace really contains
// fragments from multiple processes, not one node's view relabelled.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	minProcs := fs.Int("min-procs", 0,
		"fail unless each file has at least this many distinct process lanes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: tracecheck [-min-procs N] trace.json [more.json ...]")
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		stats, err := trace.DecodeChromeStats(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if stats.DurationEvents == 0 {
			return fmt.Errorf("%s: no duration events", path)
		}
		if stats.Processes < *minProcs {
			return fmt.Errorf("%s: %d process lanes, want >= %d",
				path, stats.Processes, *minProcs)
		}
		fmt.Printf("%s: ok (%d duration events, %d processes)\n",
			path, stats.DurationEvents, stats.Processes)
	}
	return nil
}
