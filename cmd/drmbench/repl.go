package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/logstore"
	"repro/internal/wal"
)

// replRow is one point of the replication benchmark: a leader holding n
// durable records, a fresh follower tailing it over real HTTP handlers
// in bounded fetch windows until lag reaches zero, then a failover —
// the leader disappears and the follower is promoted and takes its
// first write.
type replRow struct {
	// Records is the leader's durable record count when the follower
	// starts; ShippedBytes is the wire-visible size of the mirrored log
	// (frames plus segment headers) the follower materialised.
	Records      int   `json:"records"`
	ShippedBytes int64 `json:"shipped_bytes"`
	// FetchRounds is how many bounded /v1/repl/wal round-trips the
	// catch-up took; ConvergeNS is the wall time from first fetch to
	// lag zero.
	FetchRounds int   `json:"fetch_rounds"`
	ConvergeNS  int64 `json:"converge_ns"`
	// RecordsPerSec / BytesPerSec are the sustained shipping throughputs
	// over the catch-up.
	RecordsPerSec float64 `json:"records_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	// PromoteNS is the cost of Promote against a dead leader (drain
	// attempt included); FirstWriteNS is the first post-promotion append;
	// FailoverNS is their sum — the read-only window a client observes.
	PromoteNS    int64 `json:"promote_ns"`
	FirstWriteNS int64 `json:"first_write_ns"`
	FailoverNS   int64 `json:"failover_ns"`
}

// replMeta pins the run parameters inside the artifact so two
// BENCH_repl.json records are comparable.
type replMeta struct {
	Max    int `json:"max_records"`
	Window int `json:"fetch_window_bytes"`
}

// dirBytes sums the regular files under dir — the bytes the follower
// had to materialise to mirror the leader.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// benchReplOne measures shipping and failover at n leader records with
// window-byte fetch batches.
func benchReplOne(n, window int) (replRow, error) {
	dir, err := os.MkdirTemp("", "drmbench-repl-*")
	if err != nil {
		return replRow{}, err
	}
	defer os.RemoveAll(dir)
	// Default durability (FsyncAlways): only fsync-covered frames ship,
	// and the post-promotion first write pays the same fsync a real
	// leader would.
	var opts wal.Options

	// The leader: n durable records behind the real replication handlers.
	lstore, err := wal.Open(filepath.Join(dir, "leader.wal"), opts)
	if err != nil {
		return replRow{}, err
	}
	defer lstore.Close()
	if err := lstore.AppendBatch(genRecords(n)); err != nil {
		return replRow{}, err
	}
	mux := http.NewServeMux()
	cluster.NewLeader(lstore, 0).Mount(mux)
	srv := httptest.NewServer(mux)

	fdir := filepath.Join(dir, "follower.wal")
	fstore, err := wal.Open(fdir, opts)
	if err != nil {
		srv.Close()
		return replRow{}, err
	}
	var applied int
	f, err := cluster.NewFollower(cluster.FollowerConfig{
		Leader:   srv.URL,
		Store:    fstore,
		MaxBytes: window,
		Apply: func(_ context.Context, rs []logstore.Record) {
			applied += len(rs)
		},
	})
	if err != nil {
		srv.Close()
		fstore.Close()
		return replRow{}, err
	}
	defer func() { f.Store().Close() }()

	// Catch-up: bounded fetches until the leader has nothing left.
	ctx := context.Background()
	row := replRow{Records: n}
	start := time.Now()
	for {
		got, err := f.FetchOnce(ctx)
		if err != nil {
			srv.Close()
			return replRow{}, err
		}
		row.FetchRounds++
		if got == 0 && f.Lag().Seqs == 0 {
			break
		}
	}
	converge := time.Since(start)
	row.ConvergeNS = converge.Nanoseconds()
	if applied != n {
		srv.Close()
		return replRow{}, fmt.Errorf("follower applied %d records, leader holds %d", applied, n)
	}
	if row.ShippedBytes, err = dirBytes(fdir); err != nil {
		srv.Close()
		return replRow{}, err
	}
	if s := converge.Seconds(); s > 0 {
		row.RecordsPerSec = float64(n) / s
		row.BytesPerSec = float64(row.ShippedBytes) / s
	}

	// Failover: the leader is gone; promote and take the first write.
	srv.Close()
	start = time.Now()
	f.Promote(ctx)
	promote := time.Since(start)
	row.PromoteNS = promote.Nanoseconds()
	start = time.Now()
	if err := f.Store().Append(logstore.Record{Set: genRecords(1)[0].Set, Count: 1}); err != nil {
		return replRow{}, err
	}
	write := time.Since(start)
	row.FirstWriteNS = write.Nanoseconds()
	row.FailoverNS = (promote + write).Nanoseconds()
	return row, nil
}

// benchRepl sweeps decades from 10^4 up to maxRecords.
func benchRepl(maxRecords, window int) ([]replRow, error) {
	var rows []replRow
	for n := 10_000; n <= maxRecords; n *= 10 {
		row, err := benchReplOne(n, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 { // maxRecords below the first decade: one point
		row, err := benchReplOne(maxRecords, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func writeRepl(out io.Writer, rows []replRow) error {
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "records\tshipped\trounds\tconverge\trec/s\tMiB/s\tpromote\tfirst_write\tfailover\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%.0f\t%.1f\t%v\t%v\t%v\t\n",
			r.Records, r.ShippedBytes, r.FetchRounds,
			time.Duration(r.ConvergeNS).Round(10*time.Microsecond),
			r.RecordsPerSec, r.BytesPerSec/(1<<20),
			time.Duration(r.PromoteNS).Round(time.Microsecond),
			time.Duration(r.FirstWriteNS).Round(time.Microsecond),
			time.Duration(r.FailoverNS).Round(time.Microsecond))
	}
	return tw.Flush()
}

func writeReplCSV(out io.Writer, rows []replRow) error {
	if _, err := fmt.Fprintln(out, "records,shipped_bytes,fetch_rounds,converge_ns,records_per_sec,bytes_per_sec,promote_ns,first_write_ns,failover_ns"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(out, "%d,%d,%d,%d,%.2f,%.2f,%d,%d,%d\n",
			r.Records, r.ShippedBytes, r.FetchRounds, r.ConvergeNS,
			r.RecordsPerSec, r.BytesPerSec, r.PromoteNS, r.FirstWriteNS, r.FailoverNS); err != nil {
			return err
		}
	}
	return nil
}

// writeReplJSON writes the rows as a stable JSON artifact (the
// BENCH_repl.json record CI uploads): a schema tag, the run parameters,
// and the rows.
func writeReplJSON(path string, rows []replRow, meta replMeta) error {
	doc := struct {
		Bench  string    `json:"bench"`
		Schema string    `json:"schema"`
		Meta   replMeta  `json:"meta"`
		Rows   []replRow `json:"rows"`
	}{Bench: "repl_failover", Schema: "drmbench/repl/v1", Meta: meta, Rows: rows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
