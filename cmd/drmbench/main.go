// Command drmbench regenerates the paper's evaluation figures (§5) on
// synthetic workloads and prints each as an aligned text table.
//
// Usage:
//
//	drmbench                 # all figures, N = 1..35
//	drmbench -fig 7 -max 20  # one figure, shorter sweep
//
// Figure index (see DESIGN.md / EXPERIMENTS.md):
//
//	6  number of disconnected groups vs N
//	7  validation time: original vs proposed (V_T, V_T + D_T)
//	8  theoretical (eq 3) vs experimental gain
//	9  single-record insertion time vs tree-division time
//	10 storage: original tree vs divided trees
//	11 issuance-policy loss extension
//	12 intra-group sharding ablation: serial vs sharded single-group V_T
//	   (-workers bounds the shard budget; default: all CPUs)
//
// Beyond the figures, -recover benchmarks WAL crash recovery (full log
// replay vs snapshot+tail) over decades of record counts:
//
//	drmbench -recover -recover-max 10000000
//
// -issue benchmarks online admission — the full validation walk the
// pre-cache hot path ran per issuance versus the incremental headroom
// cache — over decades of prior-log sizes, optionally writing the rows
// as a JSON artifact:
//
//	drmbench -issue -issue-max 1000000 -issue-json issue.json
//
// -lifecycle benchmarks the typed lifecycle ledger under a mixed
// issue/revoke/transfer stream (ratio set by -lifecycle-mix, with TTL
// issues and periodic expiry sweeps riding along):
//
//	drmbench -lifecycle -lifecycle-mix 8:1:1 -lifecycle-json lifecycle.json
//
// -repl benchmarks WAL log shipping: a follower catching a leader up
// over real replication handlers in bounded fetch windows (throughput,
// fetch rounds, lag-convergence time), then a failover — leader gone,
// follower promoted, first post-promotion write:
//
//	drmbench -repl -repl-max 100000 -repl-json BENCH_repl.json
//
// -trace audits the N=max synthetic workload under a live tracer and
// writes the span tree as Chrome Trace Event JSON (open in Perfetto):
//
//	drmbench -fig 6 -max 10 -trace trace.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("drmbench", flag.ContinueOnError)
	var (
		fig         = fs.Int("fig", 0, "figure to regenerate (6..10, 11 = policy-loss extension, 12 = intra-group sharding ablation; 0 = all)")
		maxN        = fs.Int("max", 35, "largest N in the sweep")
		maxOriginal = fs.Int("max-original", bench.DefaultMaxOriginalN,
			"largest N at which the undivided validator runs (2^N equations)")
		seed    = fs.Int64("seed", 1, "workload seed")
		format  = fs.String("format", "table", "output format: table or csv")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0),
			"worker budget for the fig 12 sharded runs (groups × intra-group mask shards)")
		recoverMode = fs.Bool("recover", false,
			"benchmark WAL recovery: full replay vs snapshot+tail over decades of record counts")
		recoverMax = fs.Int("recover-max", 1_000_000,
			"largest record count in the -recover sweep (decades from 100k)")
		issueMode = fs.Bool("issue", false,
			"benchmark online admission: full validation walk vs headroom cache over decades of prior-log sizes")
		issueMax = fs.Int("issue-max", 1_000_000,
			"largest prior-log record count in the -issue sweep (decades from 10k)")
		issueOps = fs.Int("issue-ops", 2000,
			"measured issuances per -issue point on the cached arm (the full arm caps at 200)")
		issueJSON = fs.String("issue-json", "",
			"also write the -issue ablation rows as a JSON artifact to this path")
		lifecycleMode = fs.Bool("lifecycle", false,
			"benchmark the mixed lifecycle ledger workload: issue/revoke/transfer in the -lifecycle-mix ratio, with TTL issues and periodic expiry sweeps")
		lifecycleOps = fs.Int("lifecycle-ops", 20_000,
			"measured ops in the -lifecycle stream")
		lifecycleMixFlag = fs.String("lifecycle-mix", "8:1:1",
			"issue:revoke:transfer weights for the -lifecycle stream")
		lifecycleJSON = fs.String("lifecycle-json", "",
			"also write the -lifecycle rows as a JSON artifact to this path")
		replMode = fs.Bool("repl", false,
			"benchmark WAL log shipping: follower catch-up throughput, lag convergence, and promote/failover time")
		replMax = fs.Int("repl-max", 100_000,
			"largest leader record count in the -repl sweep (decades from 10k)")
		replWindow = fs.Int("repl-window", 64<<10,
			"replication fetch window in bytes per round-trip")
		replJSON = fs.String("repl-json", "",
			"also write the -repl rows as a JSON artifact to this path")
		statsPath = fs.String("stats", "",
			"audit the N=max synthetic workload and write its AuditStats record (JSON) to this path")
		timeout = fs.Duration("timeout", 0,
			"deadline for the -stats audit (0 = none); an expired deadline still writes the partial run record")
		tracePath = fs.String("trace", "",
			"trace an audit of the N=max synthetic workload and write it as Chrome Trace Event JSON (Perfetto-loadable) to this path")
		logLevel  = fs.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "diagnostic log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Diagnostics go to stderr so -format csv stdout stays machine-clean.
	lh, err := obs.NewLogHandler(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		return err
	}
	slogger := slog.New(trace.LogHandler(lh))

	if *maxN < 1 || *maxN > 64 {
		return fmt.Errorf("max must be in [1,64], got %d", *maxN)
	}
	csvOut := false
	switch *format {
	case "table":
	case "csv":
		csvOut = true
	default:
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	ns := make([]int, 0, *maxN)
	for n := 1; n <= *maxN; n++ {
		ns = append(ns, n)
	}

	// -recover, -issue, -lifecycle, and -repl suppress the default
	// all-figures sweep (a 10^7-record recovery run should not drag the
	// full N sweep along); an explicit -fig still combines with them.
	want := func(f int) bool {
		if *fig != 0 {
			return *fig == f
		}
		return !*recoverMode && !*issueMode && !*lifecycleMode && !*replMode
	}
	ran := false

	if want(6) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Fig 6: variation of number of groups ==")
		}
		rows, err := bench.Fig6(ns, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteFig6
		if csvOut {
			write = bench.WriteFig6CSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(7) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Fig 7: validation time complexity ==")
		}
		rows, err := bench.Fig7(ns, *maxOriginal, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteFig7
		if csvOut {
			write = bench.WriteFig7CSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(8) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Fig 8: theoretical vs experimental gain ==")
		}
		rows, err := bench.Fig8(ns, *maxOriginal, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteFig8
		if csvOut {
			write = bench.WriteFig8CSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(9) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Fig 9: insertion time vs division time ==")
		}
		rows, err := bench.Fig9(ns, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteFig9
		if csvOut {
			write = bench.WriteFig9CSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(10) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Fig 10: storage space complexity ==")
		}
		rows, err := bench.Fig10(ns, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteFig10
		if csvOut {
			write = bench.WriteFig10CSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(11) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Extension: issuance-policy loss (Example 1 at scale) ==")
		}
		// A sparse sweep suffices: the effect is per-corpus, not per-N.
		// Online headroom checks are exponential in the belongs-to group's
		// size, so the sweep stays at modest N.
		var pns []int
		for _, n := range []int{4, 8, 12, 16, 20} {
			if n <= *maxN {
				pns = append(pns, n)
			}
		}
		if len(pns) == 0 {
			pns = ns
		}
		rows, err := bench.Policies(pns, *seed)
		if err != nil {
			return err
		}
		write := bench.WritePolicies
		if csvOut {
			write = bench.WritePoliciesCSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if want(12) {
		ran = true
		if !csvOut {
			fmt.Fprintln(out, "== Ablation: intra-group sharded validation (fig 12) ==")
		}
		// Sharding pays off only once a group's 2^N−1 equations dominate,
		// so a sparse sweep over larger N tells the story; tiny N rows
		// would only measure goroutine overhead.
		var sns []int
		for _, n := range []int{8, 12, 16, 18, 20} {
			if n <= *maxN {
				sns = append(sns, n)
			}
		}
		if len(sns) == 0 {
			sns = ns
		}
		rows, err := bench.IntraGroup(sns, *workers, *seed)
		if err != nil {
			return err
		}
		write := bench.WriteIntraGroup
		if csvOut {
			write = bench.WriteIntraGroupCSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if *recoverMode {
		ran = true
		if *recoverMax < 1 {
			return fmt.Errorf("recover-max must be positive, got %d", *recoverMax)
		}
		if !csvOut {
			fmt.Fprintln(out, "== Recovery: full WAL replay vs snapshot+tail ==")
		}
		rows, err := benchRecover(*recoverMax)
		if err != nil {
			return err
		}
		write := writeRecover
		if csvOut {
			write = writeRecoverCSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if *issueMode {
		ran = true
		if *issueMax < 1 {
			return fmt.Errorf("issue-max must be positive, got %d", *issueMax)
		}
		if *issueOps < 1 {
			return fmt.Errorf("issue-ops must be positive, got %d", *issueOps)
		}
		if !csvOut {
			fmt.Fprintln(out, "== Online admission: full validation walk vs headroom cache ==")
		}
		rows, err := benchIssue(*issueMax, *issueOps, *seed)
		if err != nil {
			return err
		}
		write := writeIssue
		if csvOut {
			write = writeIssueCSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if *issueJSON != "" {
			if err := writeIssueJSON(*issueJSON, rows, issueMeta{Seed: *seed, Ops: *issueOps}); err != nil {
				return err
			}
			if !csvOut {
				fmt.Fprintf(out, "issue: wrote %s\n", *issueJSON)
			}
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if *lifecycleMode {
		ran = true
		if *lifecycleOps < 1 {
			return fmt.Errorf("lifecycle-ops must be positive, got %d", *lifecycleOps)
		}
		mix, err := parseLifecycleMix(*lifecycleMixFlag)
		if err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintf(out, "== Lifecycle ledger: mixed %s issue:revoke:transfer stream ==\n", mix)
		}
		rows, sum, err := benchLifecycle(*lifecycleOps, mix, *seed)
		if err != nil {
			return err
		}
		write := writeLifecycle
		if csvOut {
			write = writeLifecycleCSV
		}
		if err := write(out, rows, sum); err != nil {
			return err
		}
		if *lifecycleJSON != "" {
			meta := lifecycleMeta{Seed: *seed, Ops: *lifecycleOps, Mix: mix.String()}
			if err := writeLifecycleJSON(*lifecycleJSON, rows, sum, meta); err != nil {
				return err
			}
			if !csvOut {
				fmt.Fprintf(out, "lifecycle: wrote %s\n", *lifecycleJSON)
			}
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if *replMode {
		ran = true
		if *replMax < 1 {
			return fmt.Errorf("repl-max must be positive, got %d", *replMax)
		}
		if *replWindow < 1 {
			return fmt.Errorf("repl-window must be positive, got %d", *replWindow)
		}
		if !csvOut {
			fmt.Fprintln(out, "== Replication: WAL log shipping and failover ==")
		}
		rows, err := benchRepl(*replMax, *replWindow)
		if err != nil {
			return err
		}
		write := writeRepl
		if csvOut {
			write = writeReplCSV
		}
		if err := write(out, rows); err != nil {
			return err
		}
		if *replJSON != "" {
			if err := writeReplJSON(*replJSON, rows, replMeta{Max: *replMax, Window: *replWindow}); err != nil {
				return err
			}
			if !csvOut {
				fmt.Fprintf(out, "repl: wrote %s\n", *replJSON)
			}
		}
		if !csvOut {
			fmt.Fprintln(out)
		}
	}
	if *statsPath != "" {
		ran = true
		if err := writeStats(*statsPath, *maxN, *workers, *seed, *timeout); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintf(out, "stats: wrote %s (audit of the N=%d workload)\n", *statsPath, *maxN)
		}
	}
	if *tracePath != "" {
		ran = true
		if err := writeTraceFile(slogger, *tracePath, *maxN, *workers, *seed, *timeout); err != nil {
			return err
		}
		if !csvOut {
			fmt.Fprintf(out, "trace: wrote %s (Chrome Trace Event JSON; load in Perfetto)\n", *tracePath)
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %d (valid: 6..12, 0 for all; 11 = policy-loss extension, 12 = sharding ablation)", *fig)
	}
	return nil
}

// writeTraceFile audits the seeded synthetic workload at the sweep's
// largest N under a live tracer (zero policy: the trace is always
// retained, even deadline-cut) and writes the span tree as a Chrome
// Trace Event document — the same pipeline spans the server emits, but
// reproducible offline for CI artifacts.
func writeTraceFile(slogger *slog.Logger, path string, n, workers int, seed int64, timeout time.Duration) error {
	cfg := workload.Default(n)
	cfg.Seed = seed
	w, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	log := logstore.NewMem(len(w.Records))
	for _, r := range w.Records {
		if err := log.Append(r); err != nil {
			return err
		}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	tr := trace.New(trace.Options{Capacity: 4})
	ctx, root := tr.Root(ctx, "drmbench.audit")
	aud, err := core.NewAuditorContext(ctx, w.Corpus, log)
	if err != nil {
		return err
	}
	aud.Workers = workers
	_, aerr := aud.AuditContext(ctx)
	partial := errors.Is(aerr, drmerr.ErrAuditIncomplete)
	root.SetInt("n", int64(n))
	root.SetInt("workers", int64(workers))
	if aerr != nil && !partial {
		root.Fail(aerr)
	}
	root.End()
	slogger.DebugContext(ctx, "traced audit finished", "n", n, "partial", partial)
	if aerr != nil && !partial {
		return aerr
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStats audits the seeded synthetic workload at the sweep's largest N
// and writes the typed run-stats record — the document CI archives per
// build so validation economics are comparable across revisions. A
// non-zero timeout bounds the audit; a deadline-cut run still writes its
// (partial, Incomplete-marked) record.
func writeStats(path string, n, workers int, seed int64, timeout time.Duration) error {
	cfg := workload.Default(n)
	cfg.Seed = seed
	w, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	log := logstore.NewMem(len(w.Records))
	for _, r := range w.Records {
		if err := log.Append(r); err != nil {
			return err
		}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	aud, err := core.NewAuditorContext(ctx, w.Corpus, log)
	if err != nil {
		return err
	}
	aud.Workers = workers
	if _, err := aud.AuditContext(ctx); err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := aud.Stats().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
