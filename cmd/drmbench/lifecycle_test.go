package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLifecycleMode(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_lifecycle.json")
	var out bytes.Buffer
	args := []string{"-lifecycle", "-lifecycle-ops", "3000", "-lifecycle-mix", "6:2:2",
		"-lifecycle-json", jsonPath}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Lifecycle ledger") || !strings.Contains(s, "6:2:2") {
		t.Errorf("output = %q", s)
	}
	if strings.Contains(s, "Fig 6") {
		t.Error("-lifecycle also ran the figure sweep")
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench  string `json:"bench"`
		Schema string `json:"schema"`
		Meta   struct {
			Mix string `json:"mix"`
			Ops int    `json:"ops"`
		} `json:"meta"`
		Rows    []lifecycleRow   `json:"rows"`
		Summary lifecycleSummary `json:"summary"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "lifecycle_mix" || doc.Schema != "drmbench/lifecycle/v1" {
		t.Errorf("artifact tags = %q %q", doc.Bench, doc.Schema)
	}
	if doc.Meta.Mix != "6:2:2" || doc.Meta.Ops != 3000 {
		t.Errorf("meta = %+v", doc.Meta)
	}
	if len(doc.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (issue, revoke, transfer)", len(doc.Rows))
	}
	var total int
	issued := map[string]int64{}
	for _, r := range doc.Rows {
		total += r.Ops
		issued[r.Op] = r.Counts
		if r.Ops > 0 && (r.P50NS <= 0 || r.P99NS < r.P50NS) {
			t.Errorf("row %s has implausible quantiles: %+v", r.Op, r)
		}
	}
	if total != 3000 {
		t.Errorf("total ops = %d, want 3000", total)
	}
	if !doc.Summary.AuditOK {
		t.Error("stream left a failing audit behind")
	}
	// The ledger books must balance: issued − revoked − swept = outstanding.
	want := issued["issue"] - issued["revoke"] - doc.Summary.SweptCounts
	if doc.Summary.Outstanding != want {
		t.Errorf("outstanding = %d, books say %d", doc.Summary.Outstanding, want)
	}
	if doc.Summary.Transferred != issued["transfer"] {
		t.Errorf("transferred = %d, rows say %d", doc.Summary.Transferred, issued["transfer"])
	}
}

func TestRunLifecycleErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lifecycle", "-lifecycle-ops", "0"}, &out); err == nil {
		t.Error("lifecycle-ops=0 accepted")
	}
	if err := run([]string{"-lifecycle", "-lifecycle-mix", "1:2"}, &out); err == nil {
		t.Error("two-part mix accepted")
	}
	if err := run([]string{"-lifecycle", "-lifecycle-mix", "0:1:1"}, &out); err == nil {
		t.Error("issue-free mix accepted")
	}
	if err := run([]string{"-lifecycle", "-lifecycle-mix", "a:b:c"}, &out); err == nil {
		t.Error("non-numeric mix accepted")
	}
}

func TestRunLifecycleCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lifecycle", "-lifecycle-ops", "1500", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "op,ops,counts,ops_per_sec,p50_ns,p99_ns\n") {
		t.Errorf("csv output = %q", s)
	}
	if strings.Contains(s, "==") {
		t.Error("csv output contains table headers")
	}
}
