package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/bitset"
	"repro/internal/headroom"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/slo"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// issueRow is one point of the online-admission ablation: the same
// issuance stream decided by the full validation walk (live tree +
// superset enumeration per op, the pre-cache hot path) versus the
// headroom cache (slack lookup + in-place decrement).
type issueRow struct {
	// Priors is how many records the issuance log already holds when the
	// measured stream starts; DistinctSets is its observed-set frontier.
	Priors       int `json:"priors"`
	DistinctSets int `json:"distinct_sets"`
	// FullBuildNS / CacheBuildNS are the one-time warm-up costs: replaying
	// the priors into a validation tree vs into the headroom cache.
	FullBuildNS  int64 `json:"full_build_ns"`
	CacheBuildNS int64 `json:"cache_build_ns"`
	// FullOpsSec / CachedOpsSec are sustained issuance throughputs;
	// the P50/P99 columns are per-op latency quantiles in nanoseconds.
	FullOpsSec   float64 `json:"full_ops_per_sec"`
	CachedOpsSec float64 `json:"cached_ops_per_sec"`
	FullP50NS    int64   `json:"full_p50_ns"`
	FullP99NS    int64   `json:"full_p99_ns"`
	CachedP50NS  int64   `json:"cached_p50_ns"`
	CachedP99NS  int64   `json:"cached_p99_ns"`
	// WindowP50NS / WindowP99NS are the cached-arm quantiles as the
	// serving-side sliding-window histogram reports them (bucket upper
	// bounds) — the same estimator /v1/status serves, so the exact
	// sorted-sample columns double as its ground truth.
	WindowP50NS int64 `json:"window_p50_ns"`
	WindowP99NS int64 `json:"window_p99_ns"`
	// Speedup is CachedOpsSec / FullOpsSec.
	Speedup float64 `json:"speedup"`
}

// issueWorkload builds the shared fixture for one ablation point: a
// corpus, a prior log of about `priors` records, the measured op stream,
// and budgets topped up far enough that every measured admission is an
// accept — the expensive path (check + decrement + append) on both arms.
type issueFixture struct {
	n        int
	corpus   *license.Corpus
	grouping overlap.Grouping
	priors   []logstore.Record
	sets     []bitset.Mask
}

func newIssueFixture(priors, ops int, seed int64) (*issueFixture, error) {
	const n = 16
	per := priors / n
	if per < 1 {
		per = 1
	}
	cfg := workload.Config{N: n, Groups: 3, Dims: 4, RecordsPerLicense: per, Seed: seed}
	w, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	seen := map[bitset.Mask]bool{}
	var sets []bitset.Mask
	var total int64
	for _, r := range w.Records {
		total += r.Count
		if !seen[r.Set] {
			seen[r.Set] = true
			sets = append(sets, r.Set)
		}
	}
	// Headroom must stay positive through priors plus the measured stream
	// on every equation, so both arms measure accepts only.
	boost := total + int64(ops)*int64(maxIssueCount) + 1
	for i := 0; i < w.Corpus.Len(); i++ {
		if err := w.Corpus.TopUp(i, boost); err != nil {
			return nil, err
		}
	}
	return &issueFixture{
		n:        n,
		corpus:   w.Corpus,
		grouping: overlap.GroupsOf(w.Corpus),
		priors:   w.Records,
		sets:     sets,
	}, nil
}

// maxIssueCount bounds the per-op issued count (cycled 1..maxIssueCount).
const maxIssueCount = 5

func (f *issueFixture) priorLog() (*logstore.Mem, error) {
	log := logstore.NewMem(len(f.priors))
	for _, r := range f.priors {
		if err := log.Append(r); err != nil {
			return nil, err
		}
	}
	return log, nil
}

func (f *issueFixture) op(i int) (bitset.Mask, int64) {
	return f.sets[i%len(f.sets)], int64(1 + i%maxIssueCount)
}

func quantile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// benchIssueFull measures the pre-cache hot path: one live validation
// tree built from the priors, then per op a full superset headroom walk
// (2^(N−|B|) equations), a tree insert, and a log append.
func benchIssueFull(f *issueFixture, ops int) (build time.Duration, lat []time.Duration, err error) {
	log, err := f.priorLog()
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	tree, err := vtree.Build(f.n, log)
	if err != nil {
		return 0, nil, err
	}
	build = time.Since(start)
	aggs := f.corpus.Aggregates()
	lat = make([]time.Duration, ops)
	for i := 0; i < ops; i++ {
		set, count := f.op(i)
		o := time.Now()
		room, err := tree.Headroom(set, aggs)
		if err != nil {
			return 0, nil, err
		}
		if count > room {
			return 0, nil, fmt.Errorf("issue bench: unexpected rejection at op %d (room %d)", i, room)
		}
		if err := tree.Insert(set, count); err != nil {
			return 0, nil, err
		}
		if err := log.Append(logstore.Record{Set: set, Count: count}); err != nil {
			return 0, nil, err
		}
		lat[i] = time.Since(o)
	}
	return build, lat, nil
}

// benchIssueCached measures the cached path: warm the headroom cache
// from the priors, then per op Admit (check + reserve + decrement),
// append, Confirm.
func benchIssueCached(f *issueFixture, ops int) (build time.Duration, lat []time.Duration, err error) {
	log, err := f.priorLog()
	if err != nil {
		return 0, nil, err
	}
	ctx := context.Background()
	start := time.Now()
	cache, err := headroom.Build(ctx, f.grouping, f.corpus.Aggregates(), log)
	if err != nil {
		return 0, nil, err
	}
	build = time.Since(start)
	lat = make([]time.Duration, ops)
	for i := 0; i < ops; i++ {
		set, count := f.op(i)
		o := time.Now()
		room, ok, err := cache.Admit(ctx, set, count)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, fmt.Errorf("issue bench: unexpected rejection at op %d (room %d)", i, room)
		}
		if err := log.Append(logstore.Record{Set: set, Count: count}); err != nil {
			return 0, nil, err
		}
		cache.Confirm()
		lat[i] = time.Since(o)
	}
	return build, lat, nil
}

func opsPerSec(lat []time.Duration) float64 {
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	if total <= 0 {
		return 0
	}
	return float64(len(lat)) / total.Seconds()
}

// benchIssueOne runs both arms at one prior-log size. The full arm walks
// exponentially many equations per op, so it gets a smaller sample; both
// arms report sustained ops/sec, which stays comparable.
func benchIssueOne(priors, ops int, seed int64) (issueRow, error) {
	fullOps := ops
	if fullOps > 200 {
		fullOps = 200
	}
	f, err := newIssueFixture(priors, ops, seed)
	if err != nil {
		return issueRow{}, err
	}
	fullBuild, fullLat, err := benchIssueFull(f, fullOps)
	if err != nil {
		return issueRow{}, err
	}
	cacheBuild, cachedLat, err := benchIssueCached(f, ops)
	if err != nil {
		return issueRow{}, err
	}
	// Feed the cached-arm latencies through the serving-side sliding
	// window so the artifact carries both estimators side by side.
	win := slo.NewLatencyWindow(slo.WindowConfig{})
	for _, d := range cachedLat {
		win.Observe(d.Seconds(), false)
	}
	snap := win.Snapshot()
	winQ := func(q float64) int64 {
		v := snap.Quantile(q)
		if math.IsInf(v, +1) && len(snap.Upper) > 0 {
			v = snap.Upper[len(snap.Upper)-1]
		}
		return int64(v * 1e9)
	}
	row := issueRow{
		Priors:       len(f.priors),
		DistinctSets: len(f.sets),
		FullBuildNS:  fullBuild.Nanoseconds(),
		CacheBuildNS: cacheBuild.Nanoseconds(),
		FullOpsSec:   opsPerSec(fullLat),
		CachedOpsSec: opsPerSec(cachedLat),
		FullP50NS:    quantile(fullLat, 0.50).Nanoseconds(),
		FullP99NS:    quantile(fullLat, 0.99).Nanoseconds(),
		CachedP50NS:  quantile(cachedLat, 0.50).Nanoseconds(),
		CachedP99NS:  quantile(cachedLat, 0.99).Nanoseconds(),
		WindowP50NS:  winQ(0.50),
		WindowP99NS:  winQ(0.99),
	}
	if row.FullOpsSec > 0 {
		row.Speedup = row.CachedOpsSec / row.FullOpsSec
	}
	return row, nil
}

// benchIssue sweeps prior-log decades from 10^4 up to maxPriors.
func benchIssue(maxPriors, ops int, seed int64) ([]issueRow, error) {
	var rows []issueRow
	for p := 10_000; p <= maxPriors; p *= 10 {
		row, err := benchIssueOne(p, ops, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 { // maxPriors below the first decade: one point
		row, err := benchIssueOne(maxPriors, ops, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func writeIssue(out io.Writer, rows []issueRow) error {
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "priors\tsets\tfull_ops/s\tcached_ops/s\tfull_p50\tfull_p99\tcached_p50\tcached_p99\tspeedup\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%v\t%v\t%v\t%v\t%.0fx\t\n",
			r.Priors, r.DistinctSets, r.FullOpsSec, r.CachedOpsSec,
			time.Duration(r.FullP50NS).Round(time.Microsecond),
			time.Duration(r.FullP99NS).Round(time.Microsecond),
			time.Duration(r.CachedP50NS).Round(100*time.Nanosecond),
			time.Duration(r.CachedP99NS).Round(100*time.Nanosecond),
			r.Speedup)
	}
	return tw.Flush()
}

func writeIssueCSV(out io.Writer, rows []issueRow) error {
	if _, err := fmt.Fprintln(out, "priors,distinct_sets,full_build_ns,cache_build_ns,full_ops_per_sec,cached_ops_per_sec,full_p50_ns,full_p99_ns,cached_p50_ns,cached_p99_ns,window_p50_ns,window_p99_ns,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(out, "%d,%d,%d,%d,%.1f,%.1f,%d,%d,%d,%d,%d,%d,%.2f\n",
			r.Priors, r.DistinctSets, r.FullBuildNS, r.CacheBuildNS,
			r.FullOpsSec, r.CachedOpsSec, r.FullP50NS, r.FullP99NS,
			r.CachedP50NS, r.CachedP99NS, r.WindowP50NS, r.WindowP99NS, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// issueMeta pins the run parameters inside the artifact so two BENCH
// records are comparable without the CI log that produced them.
type issueMeta struct {
	Seed      int64  `json:"seed"`
	Ops       int    `json:"ops"`
	GoVersion string `json:"go_version"`
}

// writeIssueJSON writes the ablation rows as a stable JSON artifact
// (the BENCH_issue.json record CI uploads): a schema tag, the run
// parameters, and one row per prior-log decade.
func writeIssueJSON(path string, rows []issueRow, meta issueMeta) error {
	meta.GoVersion = runtime.Version()
	doc := struct {
		Bench  string     `json:"bench"`
		Schema string     `json:"schema"`
		Meta   issueMeta  `json:"meta"`
		Rows   []issueRow `json:"rows"`
	}{Bench: "issue_ablation", Schema: "drmbench/issue/v2", Meta: meta, Rows: rows}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
