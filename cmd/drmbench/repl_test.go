package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunReplMode(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_repl.json")
	var out bytes.Buffer
	// A sub-decade max keeps the test to one point; a small window
	// forces a real multi-round catch-up.
	args := []string{"-repl", "-repl-max", "2000", "-repl-window", "4096",
		"-repl-json", jsonPath}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Replication") || !strings.Contains(s, "repl: wrote") {
		t.Errorf("output = %q", s)
	}
	if strings.Contains(s, "Fig 6") {
		t.Error("-repl also ran the figure sweep")
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench  string `json:"bench"`
		Schema string `json:"schema"`
		Meta   struct {
			Max    int `json:"max_records"`
			Window int `json:"fetch_window_bytes"`
		} `json:"meta"`
		Rows []replRow `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "repl_failover" || doc.Schema != "drmbench/repl/v1" {
		t.Errorf("artifact tags = %q %q", doc.Bench, doc.Schema)
	}
	if doc.Meta.Max != 2000 || doc.Meta.Window != 4096 {
		t.Errorf("meta = %+v", doc.Meta)
	}
	if len(doc.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (max below the first decade)", len(doc.Rows))
	}
	r := doc.Rows[0]
	if r.Records != 2000 {
		t.Errorf("records = %d, want 2000", r.Records)
	}
	// 2000 v1 frames at 24 bytes cannot fit one 4 KiB window.
	if r.FetchRounds < 2 {
		t.Errorf("fetch rounds = %d, want a multi-round catch-up", r.FetchRounds)
	}
	if r.ShippedBytes < int64(r.Records)*24 {
		t.Errorf("shipped bytes = %d, below the frame floor %d", r.ShippedBytes, r.Records*24)
	}
	if r.ConvergeNS <= 0 || r.RecordsPerSec <= 0 || r.BytesPerSec <= 0 {
		t.Errorf("implausible throughput row: %+v", r)
	}
	if r.PromoteNS <= 0 || r.FirstWriteNS <= 0 || r.FailoverNS < r.PromoteNS {
		t.Errorf("implausible failover row: %+v", r)
	}
}

func TestRunReplErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-repl", "-repl-max", "0"}, &out); err == nil {
		t.Error("repl-max 0 did not error")
	}
	if err := run([]string{"-repl", "-repl-window", "0"}, &out); err == nil {
		t.Error("repl-window 0 did not error")
	}
}
