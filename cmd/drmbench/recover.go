package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"repro/internal/bitset"
	"repro/internal/logstore"
	"repro/internal/wal"
)

// recoverRow is one point of the recovery benchmark: how long a WAL open
// takes when it must replay every record, versus when a snapshot covers
// all but a small tail.
type recoverRow struct {
	Records     int
	FullReplay  time.Duration
	SnapTail    time.Duration
	TailRecords int
	Speedup     float64
}

// genRecords builds n deterministic records cycling over a handful of
// belongs-to sets — shaped like a long-lived issuance log, cheap enough
// to generate at 10^7.
func genRecords(n int) []logstore.Record {
	sets := []bitset.Mask{
		bitset.MaskOf(0), bitset.MaskOf(1), bitset.MaskOf(0, 1),
		bitset.MaskOf(2), bitset.MaskOf(2, 3), bitset.MaskOf(4, 5),
		bitset.MaskOf(6), bitset.MaskOf(6, 7),
	}
	out := make([]logstore.Record, n)
	for i := range out {
		out[i] = logstore.Record{Set: sets[i%len(sets)], Count: int64(1 + i%25)}
	}
	return out
}

// benchRecoverOne measures both recovery paths at n records. The tail
// after the snapshot is 1% of n (at least one record), modelling a store
// that checkpoints regularly.
func benchRecoverOne(n int) (recoverRow, error) {
	dir, err := os.MkdirTemp("", "drmbench-recover-*")
	if err != nil {
		return recoverRow{}, err
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "issued.wal")
	opts := wal.Options{Fsync: wal.FsyncOS}

	tail := n / 100
	if tail < 1 {
		tail = 1
	}
	recs := genRecords(n)

	s, err := wal.Open(walDir, opts)
	if err != nil {
		return recoverRow{}, err
	}
	if err := s.AppendBatch(recs); err != nil {
		s.Close()
		return recoverRow{}, err
	}
	if err := s.Close(); err != nil {
		return recoverRow{}, err
	}

	// Full replay: no snapshot exists, every frame is re-read.
	s, err = wal.Open(walDir, opts)
	if err != nil {
		return recoverRow{}, err
	}
	row := recoverRow{Records: n, FullReplay: s.RecoveryStats().Duration}

	// Install a snapshot covering all but the last `tail` records: replay
	// work drops from O(records) to O(distinct sets) + O(tail).
	if _, err := s.Snapshot(); err != nil {
		s.Close()
		return recoverRow{}, err
	}
	if err := s.AppendBatch(recs[:tail]); err != nil {
		s.Close()
		return recoverRow{}, err
	}
	if err := s.Close(); err != nil {
		return recoverRow{}, err
	}

	s, err = wal.Open(walDir, opts)
	if err != nil {
		return recoverRow{}, err
	}
	st := s.RecoveryStats()
	row.SnapTail = st.Duration
	row.TailRecords = st.TailRecords
	if err := s.Close(); err != nil {
		return recoverRow{}, err
	}
	if row.SnapTail > 0 {
		row.Speedup = float64(row.FullReplay) / float64(row.SnapTail)
	}
	return row, nil
}

// benchRecover sweeps decades from 10^5 up to maxRecords.
func benchRecover(maxRecords int) ([]recoverRow, error) {
	var rows []recoverRow
	for n := 100_000; n <= maxRecords; n *= 10 {
		row, err := benchRecoverOne(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 { // maxRecords below the first decade: one point
		row, err := benchRecoverOne(maxRecords)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func writeRecover(out io.Writer, rows []recoverRow) error {
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "records\tfull_replay\tsnap_tail\ttail_records\tspeedup\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%d\t%.1fx\t\n",
			r.Records, r.FullReplay.Round(10*time.Microsecond),
			r.SnapTail.Round(10*time.Microsecond), r.TailRecords, r.Speedup)
	}
	return tw.Flush()
}

func writeRecoverCSV(out io.Writer, rows []recoverRow) error {
	if _, err := fmt.Fprintln(out, "records,full_replay_ns,snap_tail_ns,tail_records,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(out, "%d,%d,%d,%d,%.2f\n",
			r.Records, r.FullReplay.Nanoseconds(), r.SnapTail.Nanoseconds(),
			r.TailRecords, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
