package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestBenchTraceExport(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "6", "-trace", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace: wrote") {
		t.Errorf("output does not mention the trace file:\n%s", out.String())
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := trace.DecodeChrome(f)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("trace file has no duration events")
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drmbench.audit", "core.build", "core.validate"} {
		if !bytes.Contains(raw, []byte(`"`+want+`"`)) {
			t.Errorf("trace file missing span %q", want)
		}
	}
}

func TestBenchTraceAloneRuns(t *testing.T) {
	// -trace alone is a valid invocation (ran=true), like -stats alone.
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "6", "-format", "csv", "-trace", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "trace: wrote") {
		t.Error("-format csv stdout polluted by the trace notice")
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("trace file not written: %v", err)
	}
}

func TestBenchLogLevelFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "4", "-log-level", "banana"}, &out); err == nil {
		t.Error("bad -log-level accepted")
	}
}
