package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/workload"
)

// lifecycleMix is a parsed issue:revoke:transfer weight triple.
type lifecycleMix struct {
	Issue, Revoke, Transfer int
}

func parseLifecycleMix(s string) (lifecycleMix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return lifecycleMix{}, fmt.Errorf("lifecycle-mix must be issue:revoke:transfer weights, got %q", s)
	}
	var w [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return lifecycleMix{}, fmt.Errorf("lifecycle-mix weight %q must be a non-negative integer", p)
		}
		w[i] = n
	}
	m := lifecycleMix{Issue: w[0], Revoke: w[1], Transfer: w[2]}
	if m.Issue == 0 {
		// Debits need credits to consume; an issue-free mix stalls at the
		// soundness gate after the first few ops.
		return lifecycleMix{}, fmt.Errorf("lifecycle-mix issue weight must be positive, got %q", s)
	}
	return m, nil
}

func (m lifecycleMix) total() int { return m.Issue + m.Revoke + m.Transfer }

func (m lifecycleMix) String() string {
	return fmt.Sprintf("%d:%d:%d", m.Issue, m.Revoke, m.Transfer)
}

// lifecycleRow is the measured profile of one ledger verb in the mixed
// stream: attempted ops, permissions moved, sustained throughput, and
// per-op latency quantiles on the engine's online path (admission/
// soundness check + log append + in-place cache maintenance).
type lifecycleRow struct {
	Op     string  `json:"op"`
	Ops    int     `json:"ops"`
	Counts int64   `json:"counts"`
	OpsSec float64 `json:"ops_per_sec"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
}

// lifecycleSummary pins the end state so two artifacts are comparable:
// the stream must leave a sound ledger behind it.
type lifecycleSummary struct {
	Outstanding int64 `json:"outstanding"`
	Transferred int64 `json:"transferred"`
	Sweeps      int   `json:"sweeps"`
	SweptCounts int64 `json:"swept_counts"`
	AuditOK     bool  `json:"audit_ok"`
}

// benchLifecycle drives one engine.Distributor (online mode, in-memory
// ledger) through a mixed issue/revoke/transfer stream in the requested
// ratio. A quarter of issues carry TTLs and a sweep runs every
// sweepEvery ops, so the expiry path is always exercised regardless of
// the mix. Revokes and transfers stay inside the soundness bounds —
// the point is steady-state ledger throughput, not rejection handling.
func benchLifecycle(ops int, mix lifecycleMix, seed int64) ([]lifecycleRow, lifecycleSummary, error) {
	const (
		n          = 16
		maxCount   = 5
		sweepEvery = 1000
		ttlHorizon = 50
	)
	w, err := workload.Generate(workload.Config{
		N: n, Groups: 3, Dims: 4, RecordsPerLicense: 1, Seed: seed,
	})
	if err != nil {
		return nil, lifecycleSummary{}, err
	}
	// Issues must always clear admission: boost every aggregate past the
	// worst case (every op an issue of maxCount, nothing ever debited).
	var prior int64
	for _, r := range w.Records {
		prior += r.Count
	}
	boost := prior + int64(ops)*maxCount + 1
	for i := 0; i < w.Corpus.Len(); i++ {
		if err := w.Corpus.TopUp(i, boost); err != nil {
			return nil, lifecycleSummary{}, err
		}
	}
	store := logstore.NewMem(ops)
	d := engine.NewDistributor("bench", w.Schema, engine.ModeOnline, store)
	for _, l := range w.Corpus.Licenses() {
		cp := *l
		if _, err := d.AddRedistribution(&cp); err != nil {
			return nil, lifecycleSummary{}, err
		}
	}
	ctx := context.Background()
	if err := d.WarmHeadroom(ctx); err != nil {
		return nil, lifecycleSummary{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	now := int64(1_000_000) // logical clock for TTLs and sweeps
	net := map[bitset.Mask]int64{}
	lat := map[string][]time.Duration{}
	counts := map[string]int64{}
	var sum lifecycleSummary
	for i := 0; i < ops; i++ {
		if sweepEvery > 0 && i > 0 && i%sweepEvery == 0 {
			now += ttlHorizon // everything issued before this sweep is due
			res, err := d.ExpireSweep(ctx, time.Unix(now, 0))
			if err != nil {
				return nil, lifecycleSummary{}, fmt.Errorf("lifecycle bench: sweep at op %d: %v", i, err)
			}
			led := store.LedgerSnapshot()
			for s := range net {
				net[s] = led.Net(s)
			}
			sum.Sweeps++
			sum.SweptCounts += res.Counts
		}
		lic := w.Corpus.License(rng.Intn(w.Corpus.Len()))
		rect := lic.Rect
		set := d.BelongsTo(rect)
		count := int64(1 + rng.Intn(maxCount))
		op := "issue"
		switch pick := rng.Intn(mix.total()); {
		case pick < mix.Issue:
		case pick < mix.Issue+mix.Revoke:
			if net[set] > 0 {
				op = "revoke"
			}
		default:
			if net[set] > 0 {
				op = "transfer"
			}
		}
		var opErr error
		switch op {
		case "issue":
			o := time.Now()
			if rng.Intn(4) == 0 {
				_, opErr = d.IssueTTLContext(ctx, license.Usage, rect, count, now+int64(1+rng.Intn(ttlHorizon-1)))
			} else {
				_, opErr = d.IssueContext(ctx, license.Usage, rect, count)
			}
			lat[op] = append(lat[op], time.Since(o))
			net[set] += count
		case "revoke":
			if count > net[set] {
				count = net[set]
			}
			o := time.Now()
			_, opErr = d.RevokeContext(ctx, rect, count)
			lat[op] = append(lat[op], time.Since(o))
			net[set] -= count
		case "transfer":
			if count > net[set] {
				count = net[set]
			}
			o := time.Now()
			_, opErr = d.TransferContext(ctx, rect, count)
			lat[op] = append(lat[op], time.Since(o))
		}
		if opErr != nil {
			return nil, lifecycleSummary{}, fmt.Errorf("lifecycle bench: %s at op %d: %v", op, i, opErr)
		}
		counts[op] += count
	}

	led := store.LedgerSnapshot()
	seen := map[bitset.Mask]bool{}
	for _, l := range w.Corpus.Licenses() {
		s := d.BelongsTo(l.Rect)
		if seen[s] { // several licenses can share a belongs-to set
			continue
		}
		seen[s] = true
		sum.Outstanding += led.Net(s)
		sum.Transferred += led.Transferred(s)
	}
	rep, _, err := d.Audit(1)
	if err != nil {
		return nil, lifecycleSummary{}, err
	}
	sum.AuditOK = rep.OK()

	var rows []lifecycleRow
	for _, op := range []string{"issue", "revoke", "transfer"} {
		l := lat[op]
		rows = append(rows, lifecycleRow{
			Op:     op,
			Ops:    len(l),
			Counts: counts[op],
			OpsSec: opsPerSec(l),
			P50NS:  quantile(l, 0.50).Nanoseconds(),
			P99NS:  quantile(l, 0.99).Nanoseconds(),
		})
	}
	return rows, sum, nil
}

func writeLifecycle(out io.Writer, rows []lifecycleRow, sum lifecycleSummary) error {
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "op\tops\tcounts\tops/s\tp50\tp99\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%v\t%v\t\n",
			r.Op, r.Ops, r.Counts, r.OpsSec,
			time.Duration(r.P50NS).Round(100*time.Nanosecond),
			time.Duration(r.P99NS).Round(100*time.Nanosecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out, "outstanding %d, transferred %d, sweeps %d (%d counts), audit ok=%v\n",
		sum.Outstanding, sum.Transferred, sum.Sweeps, sum.SweptCounts, sum.AuditOK)
	return err
}

func writeLifecycleCSV(out io.Writer, rows []lifecycleRow, _ lifecycleSummary) error {
	if _, err := fmt.Fprintln(out, "op,ops,counts,ops_per_sec,p50_ns,p99_ns"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(out, "%s,%d,%d,%.1f,%d,%d\n",
			r.Op, r.Ops, r.Counts, r.OpsSec, r.P50NS, r.P99NS); err != nil {
			return err
		}
	}
	return nil
}

// lifecycleMeta pins the run parameters inside the artifact so two
// BENCH records are comparable without the CI log that produced them.
type lifecycleMeta struct {
	Seed      int64  `json:"seed"`
	Ops       int    `json:"ops"`
	Mix       string `json:"mix"`
	GoVersion string `json:"go_version"`
}

// writeLifecycleJSON writes the mixed-workload rows as a stable JSON
// artifact (the BENCH_lifecycle.json record CI uploads).
func writeLifecycleJSON(path string, rows []lifecycleRow, sum lifecycleSummary, meta lifecycleMeta) error {
	meta.GoVersion = runtime.Version()
	doc := struct {
		Bench   string           `json:"bench"`
		Schema  string           `json:"schema"`
		Meta    lifecycleMeta    `json:"meta"`
		Rows    []lifecycleRow   `json:"rows"`
		Summary lifecycleSummary `json:"summary"`
	}{Bench: "lifecycle_mix", Schema: "drmbench/lifecycle/v1", Meta: meta, Rows: rows, Summary: sum}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
