package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigureSmallSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 6") || !strings.Contains(s, "groups") {
		t.Errorf("output = %q", s)
	}
	if strings.Contains(s, "Fig 7") {
		t.Error("-fig 6 also ran fig 7")
	}
}

func TestRunAllFiguresTinySweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-max", "6", "-max-original", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig 6", "Fig 7", "Fig 8", "Fig 9", "Fig 10", "policy", "intra-group"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "99", "-max", "4"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-max", "0"}, &out); err == nil {
		t.Error("max=0 accepted")
	}
	if err := run([]string{"-max", "65"}, &out); err == nil {
		t.Error("max=65 accepted")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "5", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "n,groups\n") {
		t.Errorf("csv output = %q", s)
	}
	if strings.Contains(s, "== Fig") {
		t.Error("csv output contains table headers")
	}
	if got := strings.Count(s, "\n"); got != 6 { // header + 5 rows
		t.Errorf("csv lines = %d, want 6", got)
	}
	if err := run([]string{"-format", "weird", "-max", "4"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunCSVFig9(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "9", "-max", "3", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "n,records,insert_per_record_ns,") {
		t.Errorf("csv output = %q", out.String())
	}
}

func TestRunFig12(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "12", "-max", "12", "-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "intra-group") || !strings.Contains(s, "speed-up") {
		t.Errorf("output = %q", s)
	}
	out.Reset()
	if err := run([]string{"-fig", "12", "-max", "10", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "n,equations,serial_ns,sharded_ns,workers,speedup\n") {
		t.Errorf("csv output = %q", out.String())
	}
}
