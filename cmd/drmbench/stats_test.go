package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestRunStats checks -stats writes a well-formed AuditStats record for
// the synthetic workload audit.
func TestRunStats(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-max", "10", "-stats", statsPath}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.AuditStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats file not valid JSON: %v", err)
	}
	if st.Licenses != 10 {
		t.Errorf("licenses = %d, want 10", st.Licenses)
	}
	if st.EquationsChecked <= 0 || st.GainRealized <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.GainRealized != st.GainTheoretical {
		t.Errorf("full audit realized gain %v != theoretical %v",
			st.GainRealized, st.GainTheoretical)
	}
	if st.LogRecords <= 0 || st.Groups <= 0 {
		t.Errorf("workload shape missing: %+v", st)
	}
}

// TestRunStatsAlone checks -stats is a valid invocation on its own: a
// figure selector that matches nothing still runs the stats audit.
func TestRunStatsAlone(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "99", "-max", "4", "-stats", statsPath}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statsPath); err != nil {
		t.Fatal(err)
	}
}
