package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/license"
)

// newCatalogTestServer builds a catalog with Example 1 under two contents.
func newCatalogTestServer(t *testing.T) (*httptest.Server, *license.Example1) {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), engine.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	ex := license.NewExample1()
	if _, err := cat.Add(ex.Corpus); err != nil { // content "K", play
		t.Fatal(err)
	}
	// A second content with a different corpus: just L_D^1's shape.
	other := license.NewCorpus(ex.Schema)
	cp := *ex.Corpus.License(0)
	cp.Content = "K2"
	if _, err := other.Add(&cp); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add(other); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newCatalogServer(cat, 2).routes())
	t.Cleanup(ts.Close)
	return ts, ex
}

func TestCatalogContentsListing(t *testing.T) {
	ts, _ := newCatalogTestServer(t)
	var body contentsBody
	if code := getJSON(t, ts.URL+"/v1/contents", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Contents) != 2 {
		t.Fatalf("contents = %+v", body.Contents)
	}
	// Sorted by content: K before K2.
	if body.Contents[0].Content != "K" || body.Contents[1].Content != "K2" {
		t.Errorf("order = %+v", body.Contents)
	}
	if body.Contents[0].Licenses != 5 || body.Contents[0].Groups != 2 {
		t.Errorf("K entry = %+v", body.Contents[0])
	}
}

func TestCatalogPerContentRoutes(t *testing.T) {
	ts, ex := newCatalogTestServer(t)
	// Groups of K match fig 3; groups of K2 are trivially one.
	var g groupsBody
	if code := getJSON(t, ts.URL+"/v1/c/K/play/groups", &g); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(g.Groups) != 2 {
		t.Errorf("K groups = %v", g.Groups)
	}
	if code := getJSON(t, ts.URL+"/v1/c/K2/play/groups", &g); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(g.Groups) != 1 {
		t.Errorf("K2 groups = %v", g.Groups)
	}
	// Issue against K and audit it; K2 must stay untouched.
	req := issueRequest{Values: usageValues(ex), Count: 700}
	var ir issueResponse
	if code := postJSON(t, ts.URL+"/v1/c/K/play/issue", req, &ir); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	if fmt.Sprint(ir.BelongsTo) != "[1 2]" {
		t.Errorf("belongs = %v", ir.BelongsTo)
	}
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/c/K/play/audit", &audit); code != http.StatusOK || !audit.OK {
		t.Errorf("K audit = %d %+v", code, audit)
	}
	if code := getJSON(t, ts.URL+"/v1/c/K2/play/audit", &audit); code != http.StatusOK || audit.Equations != 1 {
		t.Errorf("K2 audit = %d %+v", code, audit)
	}
}

func TestCatalogUnknownContent404(t *testing.T) {
	ts, _ := newCatalogTestServer(t)
	var e errorBody
	if code := getJSON(t, ts.URL+"/v1/c/NOPE/play/groups", &e); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	if e.Error == "" {
		t.Error("empty error body")
	}
	if code := getJSON(t, ts.URL+"/v1/c/K/copy/audit", &e); code != http.StatusNotFound {
		t.Fatalf("wrong-permission status = %d, want 404", code)
	}
}

func TestCatalogCorpusEndpoint(t *testing.T) {
	ts, _ := newCatalogTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/c/K/play/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	corpus, err := license.DecodeCorpus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 5 {
		t.Errorf("corpus len = %d", corpus.Len())
	}
}
