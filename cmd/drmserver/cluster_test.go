package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/wal"
)

// newWALTestServer builds a single-corpus server over a tiny-segment WAL
// so replication tests cross rotation boundaries quickly.
func newClusterTestServer(t *testing.T) (*server, *httptest.Server, *license.Example1) {
	t.Helper()
	ex := license.NewExample1()
	opts := wal.Options{SegmentBytes: 16 + 6*24}
	store, err := wal.Open(filepath.Join(t.TempDir(), "wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, engine.ModeOnline, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.walOpts = opts
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, ex
}

// startTestFollower attaches the follower role exactly as run() does.
// The returned stop cancels the background fetch loop; tests that need
// deterministic lag call it (and wait on Done) before issuing, then
// drive Sync/FetchOnce by hand.
func startTestFollower(t *testing.T, srv *server, leaderURL string, maxLagSeqs int64, fetchBytes int) (stop func()) {
	t.Helper()
	stop, err := srv.startFollower(clusterFlags{
		leader:        leaderURL,
		fetchInterval: time.Hour,
		maxLagSeqs:    maxLagSeqs,
		fetchBytes:    fetchBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return stop
}

// quiesce stops the follower's background loop so manual fetches are
// the only replication traffic.
func quiesce(srv *server, stop func()) {
	stop()
	<-srv.follower.Done()
}

func issueN(t *testing.T, url string, ex *license.Example1, count int64) {
	t.Helper()
	var resp issueResponse
	code := postJSON(t, url+"/v1/issue", issueRequest{Values: usageValues(ex), Count: count}, &resp)
	if code != http.StatusOK {
		t.Fatalf("issue on %s: status %d", url, code)
	}
}

// TestFollowerServesReadsRefusesWritesThenPromotes is the server-level
// leader/follower walkthrough: issues land on the leader, ship to the
// follower, the follower's stats/audit/headroom stay warm while its
// writes answer typed 403s, and POST /v1/promote flips it writable.
func TestFollowerServesReadsRefusesWritesThenPromotes(t *testing.T) {
	lsrv, lts, lex := newClusterTestServer(t)
	lsrv.role = cluster.RoleLeader
	fsrv, fts, _ := newClusterTestServer(t)
	startTestFollower(t, fsrv, lts.URL, 0, 0)

	issueN(t, lts.URL, lex, 5)
	issueN(t, lts.URL, lex, 7)
	if err := fsrv.follower.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Replicated state is warm: stats match the leader's.
	var lst, fst statsResponse
	getJSON(t, lts.URL+"/v1/stats", &lst)
	getJSON(t, fts.URL+"/v1/stats", &fst)
	if fst.Issued != lst.Issued || fst.IssuedCounts != lst.IssuedCounts {
		t.Fatalf("follower stats %+v, leader %+v", fst, lst)
	}
	if fst.IssuedCounts != 12 {
		t.Fatalf("follower issued counts = %d, want 12", fst.IssuedCounts)
	}
	var audit auditResponse
	if code := getJSON(t, fts.URL+"/v1/audit", &audit); code != http.StatusOK || !audit.OK {
		t.Fatalf("follower audit: code %d ok %v", code, audit.OK)
	}
	if code := getJSON(t, fts.URL+"/v1/headroom", nil); code != http.StatusOK {
		t.Fatalf("follower headroom: %d", code)
	}

	// Writes answer the typed read-only 403.
	var eb errorBody
	fex := license.NewExample1()
	code := postJSON(t, fts.URL+"/v1/issue", issueRequest{Values: usageValues(fex), Count: 1}, &eb)
	if code != http.StatusForbidden || eb.Kind != "read_only" {
		t.Fatalf("follower issue: code %d kind %q, want 403 read_only", code, eb.Kind)
	}

	// Role probes and status see the follower.
	var info cluster.RoleInfo
	getJSON(t, fts.URL+"/v1/repl/role", &info)
	if info.Role != cluster.RoleFollower || !info.Ready || info.Leader != lts.URL {
		t.Fatalf("follower role = %+v", info)
	}
	getJSON(t, lts.URL+"/v1/repl/role", &info)
	if info.Role != cluster.RoleLeader || !info.Ready || info.Seq == 0 {
		t.Fatalf("leader role = %+v", info)
	}
	var st statusResponse
	getJSON(t, fts.URL+"/v1/status", &st)
	if st.Replication == nil || st.Replication.Role != cluster.RoleFollower {
		t.Fatalf("follower status replication = %+v", st.Replication)
	}

	// Promote: idempotent, flips writable, role changes.
	var promoted struct {
		Role    string      `json:"role"`
		Already bool        `json:"already_promoted"`
		Lag     cluster.Lag `json:"lag"`
	}
	if code := postJSON(t, fts.URL+"/v1/promote", nil, &promoted); code != http.StatusOK {
		t.Fatalf("promote: %d", code)
	}
	if promoted.Role != cluster.RoleLeader || promoted.Already || promoted.Lag.Seqs != 0 {
		t.Fatalf("promote response %+v", promoted)
	}
	if code := postJSON(t, fts.URL+"/v1/promote", nil, &promoted); code != http.StatusOK || !promoted.Already {
		t.Fatalf("re-promote: code %d already %v", code, promoted.Already)
	}
	getJSON(t, fts.URL+"/v1/repl/role", &info)
	if info.Role != cluster.RoleLeader || !info.Ready {
		t.Fatalf("promoted role = %+v", info)
	}
	issueN(t, fts.URL, fex, 3)
	getJSON(t, fts.URL+"/v1/stats", &fst)
	if fst.IssuedCounts != 15 {
		t.Fatalf("post-promotion issued counts = %d, want 15", fst.IssuedCounts)
	}

	// A non-follower refuses promotion.
	if code := postJSON(t, lts.URL+"/v1/promote", nil, nil); code != http.StatusConflict {
		t.Fatalf("promote on leader: %d, want 409", code)
	}
}

// TestFollowerReadyzReportsTypedLag: a follower beyond -max-lag answers
// readyz 503 with the typed {error, kind: replica_lag} body, and
// recovers to 200 after catching up.
func TestFollowerReadyzReportsTypedLag(t *testing.T) {
	lsrv, lts, lex := newClusterTestServer(t)
	lsrv.role = cluster.RoleLeader
	fsrv, fts, _ := newClusterTestServer(t)
	stop := startTestFollower(t, fsrv, lts.URL, 2, 24)
	quiesce(fsrv, stop)

	issueN(t, lts.URL, lex, 1)
	issueN(t, lts.URL, lex, 1)
	issueN(t, lts.URL, lex, 1)
	issueN(t, lts.URL, lex, 1)
	// One bounded fetch (24 bytes = one frame) learns the leader
	// frontier without draining it: lag is now visible and beyond the
	// bound of 2.
	if _, err := fsrv.follower.FetchOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if code := getJSON(t, fts.URL+"/v1/readyz", &eb); code != http.StatusServiceUnavailable {
		t.Fatalf("lagging readyz: %d, want 503", code)
	}
	if eb.Kind != drmerr.KindReplicaLag.String() {
		t.Fatalf("lagging readyz kind = %q, want replica_lag", eb.Kind)
	}
	var info cluster.RoleInfo
	getJSON(t, fts.URL+"/v1/repl/role", &info)
	if info.Ready || info.LagSeqs == 0 {
		t.Fatalf("lagging role = %+v", info)
	}

	if err := fsrv.follower.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ok map[string]string
	if code := getJSON(t, fts.URL+"/v1/readyz", &ok); code != http.StatusOK || ok["status"] != "ready" {
		t.Fatalf("caught-up readyz: code %d body %v", code, ok)
	}
}

// TestFollowerRebootstrapSwapsServingState: when the leader compacts
// past the follower's cursor, the follower re-bootstraps from the
// leader snapshot and the server swaps distributor and store behind the
// mounted routes — stats converge and writes stay read-only.
func TestFollowerRebootstrapSwapsServingState(t *testing.T) {
	lsrv, lts, lex := newClusterTestServer(t)
	lsrv.role = cluster.RoleLeader
	fsrv, fts, _ := newClusterTestServer(t)
	stop := startTestFollower(t, fsrv, lts.URL, 0, 0)
	quiesce(fsrv, stop)
	before := fsrv.currentAPI().wal

	// Eight records seal the first tiny segment (six frames per
	// segment); the snapshot then covers it entirely, so Compact retires
	// it and the dormant follower's start cursor points into history
	// that no longer exists as segments.
	for i := 0; i < 8; i++ {
		issueN(t, lts.URL, lex, 1)
	}
	lw := lsrv.currentAPI().wal
	if _, err := lw.Snapshot(); err != nil {
		t.Fatal(err)
	}
	retired, err := lw.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if retired == 0 {
		t.Fatal("compaction retired no segments; the re-bootstrap path is not exercised")
	}
	issueN(t, lts.URL, lex, 1)
	issueN(t, lts.URL, lex, 1)

	if err := fsrv.follower.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := fsrv.currentAPI().wal
	if after == before {
		t.Fatal("re-bootstrap did not swap the follower's store")
	}
	if fsrv.follower.Store() != after {
		t.Fatal("follower and server disagree on the live store")
	}
	// Stats counters are per-process and reset with the rebuilt
	// distributor: only the post-bootstrap tail feeds them. The ledger
	// state is what must agree — audit verdict and headroom slack.
	var fst statsResponse
	getJSON(t, fts.URL+"/v1/stats", &fst)
	if fst.Issued != 2 {
		t.Fatalf("after re-bootstrap: follower applied %d tail records, want 2", fst.Issued)
	}
	var audit auditResponse
	if code := getJSON(t, fts.URL+"/v1/audit", &audit); code != http.StatusOK || !audit.OK {
		t.Fatalf("follower audit after re-bootstrap: code %d ok %v", code, audit.OK)
	}
	var lhr, fhr headroomResponse
	getJSON(t, lts.URL+"/v1/headroom", &lhr)
	getJSON(t, fts.URL+"/v1/headroom", &fhr)
	if !reflect.DeepEqual(lhr, fhr) {
		t.Fatalf("headroom diverged after re-bootstrap:\nleader   %+v\nfollower %+v", lhr, fhr)
	}
	var eb errorBody
	fex := license.NewExample1()
	code := postJSON(t, fts.URL+"/v1/issue", issueRequest{Values: usageValues(fex), Count: 1}, &eb)
	if code != http.StatusForbidden || eb.Kind != "read_only" {
		t.Fatalf("post-re-bootstrap issue: code %d kind %q, want 403 read_only", code, eb.Kind)
	}
	if seq := after.Seq(); seq != lsrv.currentAPI().wal.Seq() {
		t.Fatalf("follower seq %d != leader seq %d", seq, lsrv.currentAPI().wal.Seq())
	}
}

// TestStandaloneRoleProbe: a server with no cluster wiring answers the
// role probe as a ready standalone — what routers expect from legacy
// peers.
func TestStandaloneRoleProbe(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	var info cluster.RoleInfo
	if code := getJSON(t, ts.URL+"/v1/repl/role", &info); code != http.StatusOK {
		t.Fatalf("role probe: %d", code)
	}
	if info.Role != cluster.RoleStandalone || !info.Ready {
		t.Fatalf("standalone role = %+v", info)
	}
	// A JSONL-backed server has no frames to ship: typed 409.
	if code := getJSON(t, ts.URL+"/v1/repl/wal?segment=1&offset=16&seq=0", nil); code != http.StatusConflict {
		t.Fatalf("jsonl repl/wal: %d, want 409", code)
	}
}
