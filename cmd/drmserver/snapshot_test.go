package main

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/wal"
)

// newWALTestServer is newTestServer with the issuance log on the WAL
// backend.
func newWALTestServer(t *testing.T) (*httptest.Server, *license.Example1, *wal.Store) {
	t.Helper()
	ex := license.NewExample1()
	store, err := wal.Open(filepath.Join(t.TempDir(), "issued.wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, engine.ModeOnline, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, ex, store
}

func TestSnapshotEndpointWAL(t *testing.T) {
	ts, ex, store := newWALTestServer(t)
	for i := 0; i < 3; i++ {
		req := issueRequest{Values: usageValues(ex), Count: 10}
		if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
			t.Fatalf("issue status = %d", code)
		}
	}
	var info wal.SnapshotInfo
	if code := postJSON(t, ts.URL+"/v1/snapshot", nil, &info); code != http.StatusOK {
		t.Fatalf("snapshot status = %d", code)
	}
	if info.Seq != 3 {
		t.Errorf("snapshot seq = %d, want 3", info.Seq)
	}
	if store.SnapshotSeq() != 3 {
		t.Errorf("store SnapshotSeq = %d, want 3", store.SnapshotSeq())
	}
	// Issuance keeps working after the checkpoint, and the audit still
	// sees the whole history.
	req := issueRequest{Values: usageValues(ex), Count: 10}
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
		t.Fatalf("issue after snapshot status = %d", code)
	}
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}
	if !audit.OK {
		t.Errorf("audit after snapshot = %+v", audit)
	}
}

func TestSnapshotEndpointJSONLConflict(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/snapshot", nil, &e); code != http.StatusConflict {
		t.Fatalf("snapshot on jsonl backend: status = %d, want 409", code)
	}
	if e.Error == "" {
		t.Error("empty error body")
	}
}
