package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/logstore"
)

// newTestServer wires the paper's Example 1 corpus behind the HTTP API.
func newTestServer(t *testing.T, mode engine.Mode) (*httptest.Server, *license.Example1) {
	t.Helper()
	ex := license.NewExample1()
	store, err := logstore.OpenFile(filepath.Join(t.TempDir(), "issued.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, mode, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, ex
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/v1/healthz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestCorpusEndpoint(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	resp, err := http.Get(ts.URL + "/v1/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	corpus, err := license.DecodeCorpus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != ex.Corpus.Len() {
		t.Errorf("corpus len = %d, want %d", corpus.Len(), ex.Corpus.Len())
	}
}

func TestGroupsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	var body groupsBody
	if code := getJSON(t, ts.URL+"/v1/groups", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Groups) != 2 {
		t.Fatalf("groups = %v", body.Groups)
	}
	if fmt.Sprint(body.Groups[0]) != "[1 2 4]" || fmt.Sprint(body.Groups[1]) != "[3 5]" {
		t.Errorf("groups = %v, want [[1 2 4] [3 5]]", body.Groups)
	}
	if body.Gain < 3.09 || body.Gain > 3.11 {
		t.Errorf("gain = %v, want 3.1", body.Gain)
	}
}

// usageValues builds the wire form of L_U^1's rectangle (period inside
// L1∩L2, region India).
func usageValues(ex *license.Example1) []license.ValueDoc {
	rect := ex.Usage1.Rect
	iv := rect.Value(0).Interval()
	lo, hi := iv.Lo, iv.Hi
	return []license.ValueDoc{
		{Lo: &lo, Hi: &hi},
		{Set: rect.Value(1).Set().Elems()},
	}
}

func TestIssueAndAuditFlow(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	req := issueRequest{Values: usageValues(ex), Count: 800}
	var resp issueResponse
	if code := postJSON(t, ts.URL+"/v1/issue", req, &resp); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	if fmt.Sprint(resp.BelongsTo) != "[1 2]" {
		t.Errorf("belongs_to = %v, want [1 2]", resp.BelongsTo)
	}
	if resp.Count != 800 || resp.Name == "" {
		t.Errorf("response = %+v", resp)
	}
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}
	if !audit.OK || audit.Groups != 2 || audit.Equations != 10 {
		t.Errorf("audit = %+v", audit)
	}
}

func TestIssueInstanceRejection(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	lo, hi := int64(0), int64(1) // far outside every license period
	req := issueRequest{
		Values: []license.ValueDoc{{Lo: &lo, Hi: &hi}, {Set: []int{0}}},
		Count:  10,
	}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/issue", req, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", code)
	}
	if e.Error == "" {
		t.Error("empty error body")
	}
	if e.Kind != "instance_invalid" {
		t.Errorf("kind = %q, want instance_invalid", e.Kind)
	}
}

func TestIssueAggregateRejection(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	// Drain the L1∩L2 headroom (binding equation C⟨{1,2}⟩ ≤ 3000), then
	// one more must 409.
	req := issueRequest{Values: usageValues(ex), Count: 3000}
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
		t.Fatalf("drain status = %d", code)
	}
	req.Count = 1
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/issue", req, &e); code != http.StatusConflict {
		t.Fatalf("status = %d, want 409", code)
	}
	if e.Kind != "violation" {
		t.Errorf("kind = %q, want violation", e.Kind)
	}
	// The audit must still be clean: the violation was prevented.
	var audit auditResponse
	getJSON(t, ts.URL+"/v1/audit", &audit)
	if !audit.OK {
		t.Errorf("audit dirty after rejection: %+v", audit)
	}
}

func TestIssueBadRequests(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	// Broken JSON.
	resp, err := http.Post(ts.URL+"/v1/issue", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON status = %d", resp.StatusCode)
	}
	// Wrong arity.
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: nil, Count: 5}, nil); code != http.StatusBadRequest {
		t.Errorf("wrong arity status = %d", code)
	}
	// Unknown kind.
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 5, Kind: "weird"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown kind status = %d", code)
	}
	// Non-positive count.
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("zero count status = %d", code)
	}
}

func TestOfflineModeLogsViolations(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOffline)
	// Offline mode accepts over-issuance...
	req := issueRequest{Values: usageValues(ex), Count: 2900}
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
			t.Fatalf("offline issue %d status = %d", i, code)
		}
	}
	// ...and the audit reports it.
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}
	if audit.OK || len(audit.Violations) == 0 {
		t.Errorf("audit = %+v, want violations", audit)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 500}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Licenses != 5 || st.Groups != 2 || st.Issued != 1 || st.IssuedCounts != 500 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrentReadsAndIssues hammers the read-locked endpoints (corpus,
// groups, stats, audit) while issuances take the write lock, so the race
// detector can vet the RWMutex discipline end to end.
func TestConcurrentReadsAndIssues(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOffline)
	var wg sync.WaitGroup
	paths := []string{"/v1/corpus", "/v1/groups", "/v1/stats", "/v1/audit"}
	for _, p := range paths {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
				}
			}(p)
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := issueRequest{Values: usageValues(ex), Count: 1}
			for j := 0; j < 5; j++ {
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/issue", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
