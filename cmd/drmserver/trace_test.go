package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// syncBuffer is a concurrency-safe log sink: request log lines are
// emitted from server handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// installTestTracer points the package tracer and logger at
// test-controlled instances ("slow=0": retain everything) and restores
// them on cleanup.
func installTestTracer(t *testing.T) (*trace.Tracer, *syncBuffer) {
	t.Helper()
	oldTracer, oldLogger := tracer, logger
	tr := trace.New(trace.Options{Capacity: 256})
	var logBuf syncBuffer
	h, err := obs.NewLogHandler("json", "info", &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	tracer = tr
	logger = slog.New(trace.LogHandler(h))
	t.Cleanup(func() { tracer, logger = oldTracer, oldLogger })
	return tr, &logBuf
}

// spanTreeReaches walks parent links from a span named name up to the
// root, proving the span is attached to the request's trace (not
// orphaned).
func spanTreeReaches(rec *trace.TraceRecord, name string) bool {
	byID := map[uint64]trace.SpanRecord{}
	for _, s := range rec.Spans {
		byID[s.ID] = s
	}
	for _, s := range rec.Spans {
		if s.Name != name {
			continue
		}
		cur, hops := s, 0
		for cur.Parent != 0 && hops < len(rec.Spans)+1 {
			p, ok := byID[cur.Parent]
			if !ok {
				return false
			}
			cur, hops = p, hops+1
		}
		if cur.ID == 1 {
			return true
		}
	}
	return false
}

// TestTracedIssueEndToEnd is the acceptance-criteria walk: under
// slow=0 sampling a WAL-backed issue produces a retained trace whose
// span tree reaches wal.append; a failing issue yields the same
// trace_id in the slog request line and the JSON error body; and the
// retained ring exports valid Chrome Trace Event JSON.
func TestTracedIssueEndToEnd(t *testing.T) {
	tr, logBuf := installTestTracer(t)
	ts, ex, _ := newWALTestServer(t)

	// A successful issue: its trace must reach the WAL append (and the
	// FsyncAlways policy's fsync wait under it).
	req := issueRequest{Values: usageValues(ex), Count: 800}
	var ok issueResponse
	if code := postJSON(t, ts.URL+"/v1/issue", req, &ok); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}

	// A failing issue (aggregate headroom exhausted): 409 with the
	// trace_id in the body.
	req.Count = 1 << 40
	var e errorBody
	code := postJSON(t, ts.URL+"/v1/issue", req, &e)
	if code != http.StatusConflict {
		t.Fatalf("over-budget issue status = %d, want 409", code)
	}
	if e.TraceID == "" {
		t.Fatalf("error body carries no trace_id: %+v", e)
	}

	if got := tr.Sampled(); got != 2 {
		t.Fatalf("sampled = %d, want 2 (slow=0 retains everything)", got)
	}

	// The successful trace reaches wal.append → wal.fsync.
	var issueTrace *trace.TraceRecord
	for _, rec := range tr.Snapshot() {
		if rec.ID != e.TraceID {
			issueTrace = rec
		}
	}
	if issueTrace == nil {
		t.Fatal("successful issue trace not retained")
	}
	for _, want := range []string{"engine.issue", "engine.instance", "engine.headroom", "wal.append", "wal.fsync"} {
		if !spanTreeReaches(issueTrace, want) {
			t.Errorf("span %q missing or detached from root in %+v", want, issueTrace.Spans)
		}
	}

	// The failing trace is marked as an error and its ID matches both
	// the error body and a request log line.
	failTrace := tr.Get(e.TraceID)
	if failTrace == nil {
		t.Fatal("failing issue trace not retained")
	}
	if !failTrace.Error {
		t.Error("failing issue trace not marked as error")
	}
	var logged bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		if rec["msg"] == "request" && rec["trace_id"] == e.TraceID {
			logged = true
			if rec["status"] != float64(http.StatusConflict) {
				t.Errorf("request log line status = %v, want 409", rec["status"])
			}
		}
	}
	if !logged {
		t.Errorf("no request log line with trace_id %s:\n%s", e.TraceID, logBuf.String())
	}

	// /debug/traces index lists both; per-trace chrome export validates.
	var idx struct {
		Traces []trace.TraceSummary `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &idx); code != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", code)
	}
	if len(idx.Traces) != 2 {
		t.Fatalf("index lists %d traces, want 2", len(idx.Traces))
	}
	resp, err := http.Get(ts.URL + "/debug/traces/" + e.TraceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := trace.DecodeChrome(resp.Body)
	if err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("chrome export has no duration events")
	}
}

// TestTracedRequestsConcurrentHammer runs concurrent traced issues
// (meant for -race) and verifies no trace was lost and every span's
// parent resolves inside its own trace.
func TestTracedRequestsConcurrentHammer(t *testing.T) {
	tr, _ := installTestTracer(t)
	ts, ex, _ := newWALTestServer(t)

	const clients = 8
	const perClient = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := issueRequest{Values: usageValues(ex), Count: 1}
				postJSON(t, ts.URL+"/v1/issue", req, nil)
			}
		}()
	}
	wg.Wait()

	if got := tr.Sampled(); got != clients*perClient {
		t.Fatalf("sampled = %d, want %d", got, clients*perClient)
	}
	for _, sum := range tr.Traces() {
		rec := tr.Get(sum.ID)
		if rec == nil {
			t.Fatalf("trace %s listed but not fetchable", sum.ID)
		}
		seen := map[uint64]bool{}
		for _, s := range rec.Spans {
			if seen[s.ID] {
				t.Fatalf("trace %s: duplicate span id %d", rec.ID, s.ID)
			}
			seen[s.ID] = true
		}
		roots := 0
		for _, s := range rec.Spans {
			if s.Parent == 0 {
				roots++
				continue
			}
			if !seen[s.Parent] {
				t.Fatalf("trace %s: span %d (%s) parent %d unresolved", rec.ID, s.ID, s.Name, s.Parent)
			}
		}
		if roots != 1 {
			t.Fatalf("trace %s has %d roots", rec.ID, roots)
		}
		if !spanTreeReaches(rec, "wal.append") {
			t.Fatalf("trace %s never reached wal.append", rec.ID)
		}
	}
}

// TestTracingDisabledNoSpans proves the nil-tracer path: no spans, no
// retained traces, /debug/traces 404s, and error bodies carry no
// trace_id.
func TestTracingDisabledNoSpans(t *testing.T) {
	oldTracer := tracer
	tracer = nil
	t.Cleanup(func() { tracer = oldTracer })
	ts, ex, _ := newWALTestServer(t)

	req := issueRequest{Values: usageValues(ex), Count: 1 << 40}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/issue", req, &e); code != http.StatusConflict {
		t.Fatalf("issue status = %d, want 409", code)
	}
	if e.TraceID != "" {
		t.Errorf("trace_id %q in body with tracing off", e.TraceID)
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces status = %d, want 404 with tracing off", resp.StatusCode)
	}
}

// TestTraceSlowPolicyDropsFast proves tail-sampling end-to-end: with an
// unreachable slow threshold, clean requests are dropped (counted, not
// retained) while error requests are always kept.
func TestTraceSlowPolicyDropsFast(t *testing.T) {
	oldTracer, oldLogger := tracer, logger
	tr := trace.New(trace.Options{Capacity: 16, Policy: trace.Policy{Slow: 1 << 40}})
	tracer = tr
	var logBuf syncBuffer
	h, err := obs.NewLogHandler("json", "info", &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	logger = slog.New(trace.LogHandler(h))
	t.Cleanup(func() { tracer, logger = oldTracer, oldLogger })
	ts, ex, _ := newWALTestServer(t)

	if code := postJSON(t, ts.URL+"/v1/issue", issueRequest{Values: usageValues(ex), Count: 1}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	if tr.Sampled() != 0 || tr.Dropped() != 1 {
		t.Fatalf("fast clean request: sampled=%d dropped=%d, want 0/1", tr.Sampled(), tr.Dropped())
	}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/issue", issueRequest{Values: usageValues(ex), Count: 1 << 40}, &e); code != http.StatusConflict {
		t.Fatalf("issue status = %d, want 409", code)
	}
	if tr.Sampled() != 1 {
		t.Fatalf("error request not retained: sampled=%d", tr.Sampled())
	}
	if tr.Get(e.TraceID) == nil {
		t.Fatalf("error trace %s not in ring", e.TraceID)
	}
}

// TestMiddlewareExtractsTraceparent: a request arriving with a valid
// traceparent header (as the router stamps on forwards) continues the
// upstream trace — the server's root adopts the upstream trace ID and
// records the remote parent — while a garbage header falls back to a
// locally minted root.
func TestMiddlewareExtractsTraceparent(t *testing.T) {
	tr, _ := installTestTracer(t)
	ts, ex, _ := newWALTestServer(t)

	const upstreamID = "0123456789abcdef"
	const upstreamSpan = "00000000000000aa"
	body, err := json.Marshal(issueRequest{Values: usageValues(ex), Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/issue", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-0000000000000000"+upstreamID+"-"+upstreamSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("issue status = %d", resp.StatusCode)
	}

	rec := tr.Get(upstreamID)
	if rec == nil {
		t.Fatalf("trace %s not retained under the upstream id", upstreamID)
	}
	if !rec.Remote || rec.RemoteParent != upstreamSpan {
		t.Fatalf("record remote=%v remote_parent=%q, want true/%s", rec.Remote, rec.RemoteParent, upstreamSpan)
	}
	if !spanTreeReaches(rec, "wal.append") {
		t.Fatalf("remote-rooted trace never reached wal.append: %+v", rec.Spans)
	}

	// A malformed header must not break the request or adopt garbage.
	req2, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/issue", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(trace.Header, "garbage")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("issue with bad header status = %d", resp2.StatusCode)
	}
	var local *trace.TraceRecord
	for _, r := range tr.Snapshot() {
		if r.ID != upstreamID {
			local = r
		}
	}
	if local == nil || local.Remote {
		t.Fatalf("malformed header did not fall back to a local root: %+v", local)
	}
}
