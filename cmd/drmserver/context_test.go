package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/logstore"
)

// newTimeoutServer is newTestServer with the request-timeout middleware
// wrapped around the routes, as serve() does with -request-timeout.
func newTimeoutServer(t *testing.T, d time.Duration) (*httptest.Server, *license.Example1) {
	t.Helper()
	ex := license.NewExample1()
	store, err := logstore.OpenFile(filepath.Join(t.TempDir(), "issued.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, engine.ModeOffline, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(withRequestTimeout(srv.routes(), d))
	t.Cleanup(ts.Close)
	return ts, ex
}

func TestWithRequestTimeoutDisabled(t *testing.T) {
	// A non-positive -request-timeout must be a strict pass-through, not a
	// wrapper with an infinite deadline.
	h := http.NewServeMux()
	if got := withRequestTimeout(h, 0); got != http.Handler(h) {
		t.Error("withRequestTimeout(h, 0) wrapped the handler")
	}
	if got := withRequestTimeout(h, -time.Second); got != http.Handler(h) {
		t.Error("withRequestTimeout(h, -1s) wrapped the handler")
	}
}

func TestRequestTimeoutCutsAudit(t *testing.T) {
	ts, ex := newTimeoutServer(t, time.Nanosecond)
	// The deadline is spent before the handler runs, so the audit is cut
	// short either during log replay (499, kind "cancelled") or during the
	// equation walk (504, kind "incomplete"). Both carry a taxonomy body;
	// neither may claim a complete verdict.
	_ = ex
	var audit auditResponse
	code := getJSON(t, ts.URL+"/v1/audit", &audit)
	switch code {
	case drmerr.StatusClientClosedRequest:
		if audit.Kind != drmerr.KindCancelled.String() {
			t.Errorf("kind = %q, want %v", audit.Kind, drmerr.KindCancelled)
		}
	case http.StatusGatewayTimeout:
		if audit.Kind != drmerr.KindIncomplete.String() {
			t.Errorf("kind = %q, want %v", audit.Kind, drmerr.KindIncomplete)
		}
		if audit.Complete {
			t.Error("deadline-cut audit claims complete=true")
		}
	default:
		t.Fatalf("status = %d, want 499 or 504", code)
	}
	if audit.Error == "" {
		t.Error("timed-out audit body has no error message")
	}
}

func TestRequestTimeoutCutsIssue(t *testing.T) {
	ts, ex := newTimeoutServer(t, time.Nanosecond)
	req := issueRequest{Values: usageValues(ex), Count: 5}
	var e errorBody
	code := postJSON(t, ts.URL+"/v1/issue", req, &e)
	if code != drmerr.StatusClientClosedRequest {
		t.Fatalf("status = %d, want 499", code)
	}
	if e.Kind != drmerr.KindCancelled.String() {
		t.Errorf("kind = %q, want %v", e.Kind, drmerr.KindCancelled)
	}
}

func TestRequestTimeoutGenerousPassesThrough(t *testing.T) {
	// A realistic budget leaves the whole issue→audit flow untouched.
	ts, ex := newTimeoutServer(t, time.Minute)
	req := issueRequest{Values: usageValues(ex), Count: 800}
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}
	if !audit.Complete || audit.GroupsComplete != 2 {
		t.Errorf("audit = %+v, want complete with 2 groups", audit)
	}
}

func TestWriteErrorTaxonomyBodies(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{drmerr.Incomplete("core.audit", context.DeadlineExceeded),
			http.StatusGatewayTimeout, "incomplete"},
		{drmerr.Wrap(drmerr.KindCancelled, "engine.issue", context.Canceled),
			drmerr.StatusClientClosedRequest, "cancelled"},
		{drmerr.New(drmerr.KindViolation, "engine.issue", "aggregate exhausted"),
			http.StatusConflict, "violation"},
		{drmerr.New(drmerr.KindStoreCorrupt, "logstore.read", "bad line"),
			http.StatusServiceUnavailable, "store_corrupt"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeError(context.Background(), rec, c.err)
		if rec.Code != c.status {
			t.Errorf("writeError(%v) status = %d, want %d", c.err, rec.Code, c.status)
		}
		var e errorBody
		if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != c.kind || e.Error == "" {
			t.Errorf("writeError(%v) body = %+v, want kind %q", c.err, e, c.kind)
		}
	}
}
