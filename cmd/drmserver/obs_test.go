package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/logstore"
)

// promSample matches one Prometheus text-format sample line; the label
// block is greedy because label values may themselves contain '}'.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (NaN|[+-]?Inf|[+-]?[0-9][^ ]*)$`)

// scrape fetches url and parses the exposition into series → value,
// failing the test on any line that is neither a comment nor a valid
// sample.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint covers the acceptance criterion: after a couple of
// issuances the exposition parses, and request counts, validate-equation
// counts, and the latency histogram are all nonzero.
func TestMetricsEndpoint(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	req := issueRequest{Values: usageValues(ex), Count: 10}
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
			t.Fatalf("issue status = %d", code)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/audit", nil); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}

	series := scrape(t, ts.URL+"/metrics")
	if got := series[`drm_http_requests_total{endpoint="POST /v1/issue",class="2xx"}`]; got != 3 {
		t.Errorf("issue request count = %v, want 3", got)
	}
	if got := series[`drm_http_request_seconds_count{endpoint="POST /v1/issue"}`]; got != 3 {
		t.Errorf("issue latency observations = %v, want 3", got)
	}
	// Online mode runs Headroom per issuance and the audit runs the full
	// sharded validation, so equations-checked must have moved.
	if got := series[`drm_validate_equations_checked_total`]; got <= 0 {
		t.Errorf("equations checked = %v, want > 0", got)
	}
	if got := series[`drm_issue_total`]; got != 3 {
		t.Errorf("issued counter = %v, want 3", got)
	}
	if got := series[`drm_log_appends_total`]; got != 3 {
		t.Errorf("log appends = %v, want 3", got)
	}
	if got := series[`drm_audit_runs_total`]; got != 1 {
		t.Errorf("audit runs = %v, want 1", got)
	}
	if got := series[`drm_http_inflight`]; got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
}

// TestMiddlewareStatusClasses checks the middleware buckets non-2xx
// responses correctly and records exactly one observation per request.
func TestMiddlewareStatusClasses(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	// Two OK, one 409 (headroom exhausted), one 400 (broken JSON).
	req := issueRequest{Values: usageValues(ex), Count: 3000}
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
		t.Fatalf("drain status = %d", code)
	}
	req.Count = 1
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusConflict {
		t.Fatalf("conflict status = %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/issue", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	series := scrape(t, ts.URL+"/metrics")
	if got := series[`drm_http_requests_total{endpoint="POST /v1/issue",class="2xx"}`]; got != 1 {
		t.Errorf("2xx = %v, want 1", got)
	}
	if got := series[`drm_http_requests_total{endpoint="POST /v1/issue",class="4xx"}`]; got != 2 {
		t.Errorf("4xx = %v, want 2", got)
	}
	if got := series[`drm_http_request_seconds_count{endpoint="POST /v1/issue"}`]; got != 3 {
		t.Errorf("latency observations = %v, want one per request, got %v", got, got)
	}
}

// TestHealthzDrainAware pins satellite 1: healthz flips to 503 the moment
// the drain flag is set, and readyz reports the loaded corpus.
func TestHealthzDrainAware(t *testing.T) {
	ex := license.NewExample1()
	store, err := logstore.OpenFile(filepath.Join(t.TempDir(), "issued.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, engine.ModeOnline, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	var body map[string]string
	if code := getJSON(t, ts.URL+"/v1/healthz", &body); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz before drain = %d %v", code, body)
	}
	if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", code, body)
	}
	srv.obs.draining.Store(true)
	if code := getJSON(t, ts.URL+"/v1/healthz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", code)
	}
	if body["status"] != "draining" {
		t.Errorf("drain body = %v", body)
	}
	// Readiness is about loadedness, not drain state.
	if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusOK {
		t.Errorf("readyz during drain = %d, want 200", code)
	}
}

// TestReadyzCatalog checks readiness in catalog mode.
func TestReadyzCatalog(t *testing.T) {
	ts, _ := newCatalogTestServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", code, body)
	}
}

// TestIssueBodyLimit pins satellite 2: an oversized issue body gets a
// structured 413, and the limit does not bite normal requests.
func TestIssueBodyLimit(t *testing.T) {
	old := maxIssueBody
	maxIssueBody = 256
	t.Cleanup(func() { maxIssueBody = old })

	ts, ex := newTestServer(t, engine.ModeOnline)
	// Well-formed JSON that forces the decoder past the cap before any
	// syntax error can preempt the MaxBytesError.
	big := []byte(`{"kind": "` + strings.Repeat("x", 4096) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/issue", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "256") {
		t.Errorf("413 error %q does not state the limit", e.Error)
	}
	// A small request still fits under the lowered cap.
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 5}, nil); code != http.StatusOK {
		t.Errorf("small request status = %d", code)
	}
}

// TestConcurrentIssueMetricsAudit is satellite 3's race hammer: catalog
// mode, concurrent issuance, metric scrapes, and audits. Run with -race.
func TestConcurrentIssueMetricsAudit(t *testing.T) {
	ts, ex := newCatalogTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := issueRequest{Values: usageValues(ex), Count: 1}
			for j := 0; j < 10; j++ {
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/c/K/play/issue", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for _, path := range []string{"/metrics", "/v1/c/K/play/audit", "/v1/healthz"} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
				}
			}(path)
		}
	}
	wg.Wait()

	series := scrape(t, ts.URL+"/metrics")
	if got := series[`drm_http_requests_total{endpoint="POST /v1/c/{content}/{perm}/issue",class="2xx"}`]; got != 40 {
		t.Errorf("concurrent issue count = %v, want 40", got)
	}
}
