// Cluster roles for drmserver. One binary plays four parts:
//
//   - standalone (default): exactly the pre-cluster behaviour;
//   - leader: standalone plus the replication endpoints (/v1/repl/wal,
//     /v1/repl/snapshot) any WAL-backed single-corpus server can serve;
//   - follower: a read-only replica tailing -leader's WAL into its own
//     -log directory through the ordinary recovery path, keeping stats
//     and the headroom cache warm via engine.ApplyReplicated, serving
//     audits/headroom/status live, refusing writes with typed 403s, and
//     flipping to leader on POST /v1/promote;
//   - router: a corpus-less front tier forwarding each request to the
//     shard owning its catalog key on a consistent-hash ring, with
//     role-aware health probing.
package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/logstore"
	"repro/internal/trace"
	"repro/internal/wal"
)

// clusterFlags carries the parsed -role/-peers/-leader/... values into
// the role wiring.
type clusterFlags struct {
	role          string
	peers         string
	leader        string
	maxLagSeqs    int64
	maxLagAge     time.Duration
	fetchInterval time.Duration
	probeInterval time.Duration
	redirect      bool
	// peerTimeout bounds each per-peer call of a router fleet fan-out
	// (/v1/cluster/status, /v1/cluster/traces).
	peerTimeout time.Duration
	// fetchBytes bounds one replication fetch (0 = the cluster
	// package's default); tests shrink it to observe partial catch-up.
	fetchBytes int
}

// replicationStatus is the replication block of /v1/status.
type replicationStatus struct {
	Role       string  `json:"role"`
	Ready      bool    `json:"ready"`
	Leader     string  `json:"leader,omitempty"`
	Seq        uint64  `json:"seq"`
	LagSeqs    int64   `json:"lag_seqs,omitempty"`
	LagSeconds float64 `json:"lag_seconds,omitempty"`
	Promoted   bool    `json:"promoted,omitempty"`
}

// currentAPI returns the corpusAPI snapshot handlers should serve with:
// the follower's re-bootstrap path swaps the distributor and store
// atomically under swapMu, exactly like catalog mode resolves its entry
// per request.
func (s *server) currentAPI() corpusAPI {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return s.api
}

// entry adapts a corpusAPI method to an http.HandlerFunc resolving the
// current API per request.
func (s *server) entry(h func(corpusAPI, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(s.currentAPI(), w, r)
	}
}

// leaderFor returns the current replication serving side (nil when the
// log is not WAL-backed).
func (s *server) leaderFor() *cluster.Leader {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return s.repl
}

func (s *server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	l := s.leaderFor()
	if l == nil {
		clientError(r.Context(), w, http.StatusConflict,
			"issuance log backend cannot ship WAL frames (run with -log-backend wal)")
		return
	}
	l.HandleWAL(w, r)
}

func (s *server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	l := s.leaderFor()
	if l == nil {
		clientError(r.Context(), w, http.StatusConflict,
			"issuance log backend cannot ship snapshots (run with -log-backend wal)")
		return
	}
	l.HandleSnapshot(w, r)
}

// roleInfo composes this server's role-probe body.
func (s *server) roleInfo() cluster.RoleInfo {
	if s.follower != nil {
		return s.follower.Role()
	}
	info := cluster.RoleInfo{Role: s.role, Ready: s.obs.ready() == nil && !s.obs.draining.Load()}
	if api := s.currentAPI(); api.wal != nil {
		info.Seq = api.wal.SyncedSeq()
	}
	return info
}

// replicationStatus derives the /v1/status replication block from the
// role probe plus the follower's lag detail.
func (s *server) replicationStatus() *replicationStatus {
	info := s.roleInfo()
	st := &replicationStatus{
		Role:       info.Role,
		Ready:      info.Ready,
		Leader:     info.Leader,
		Seq:        info.Seq,
		LagSeqs:    info.LagSeqs,
		LagSeconds: info.LagSeconds,
	}
	if s.follower != nil {
		st.Promoted = s.follower.Promoted()
	}
	return st
}

// handlePromote flips a follower to leader: the fetch loop drains (one
// final best-effort catch-up included), the distributor's read-only
// gate clears, and the response reports the lag at promotion. A
// non-follower answers 409; a repeated promote answers 200 idempotently.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.follower == nil {
		clientError(r.Context(), w, http.StatusConflict,
			"this instance is not a follower (role "+s.role+")")
		return
	}
	already := s.follower.Promoted()
	lag := s.follower.Promote(r.Context())
	s.currentAPI().dist.SetReadOnly(false)
	if !already {
		logger.Info("promoted to leader", "lag_seqs", lag.Seqs, "seq", lag.LocalSeq)
	}
	writeJSON(w, http.StatusOK, struct {
		Role    string      `json:"role"`
		Already bool        `json:"already_promoted,omitempty"`
		Lag     cluster.Lag `json:"lag"`
	}{Role: cluster.RoleLeader, Already: already, Lag: lag})
}

// applyReplicated folds freshly shipped records into the current
// distributor's derived state.
func (s *server) applyReplicated(ctx context.Context, recs []logstore.Record) {
	s.currentAPI().dist.ApplyReplicated(ctx, recs)
}

// resetMirror is the follower's re-bootstrap path: the leader compacted
// past our cursor, so the local mirror is rebuilt from its snapshot
// document and the serving state (distributor, headroom cache, repl
// endpoints) is swapped to the fresh store.
func (s *server) resetMirror(ctx context.Context, doc *wal.BootstrapDoc) (*wal.Store, error) {
	old := s.currentAPI()
	dir := old.wal.Dir()
	if err := old.wal.Close(); err != nil {
		logger.Warn("closing outgrown mirror", "err", err)
	}
	ns, err := cluster.ReinstallStore(dir, doc, s.walOpts)
	if err != nil {
		return nil, err
	}
	d, err := buildDistributor(old.corpus, ns, s.mode)
	if err != nil {
		ns.Close()
		return nil, err
	}
	d.SetReadOnly(true)
	s.swapMu.Lock()
	s.api.dist = d
	s.api.wal = ns
	s.repl = cluster.NewLeader(ns, 0)
	s.swapMu.Unlock()
	logger.Info("mirror re-bootstrapped from leader snapshot",
		"records", ns.Len(), "seq", ns.Seq())
	return ns, nil
}

// startFollower wires the follower role onto a freshly built
// single-corpus server: read-only gate, replication-aware readiness,
// and the background fetch loop. The returned stop cancels the loop.
func (s *server) startFollower(cf clusterFlags) (stop func(), err error) {
	api := s.currentAPI()
	if api.wal == nil {
		return nil, fmt.Errorf("role follower needs a WAL-backed log (run with -log-backend wal)")
	}
	f, err := cluster.NewFollower(cluster.FollowerConfig{
		Leader:     strings.TrimRight(cf.leader, "/"),
		Store:      api.wal,
		MaxBytes:   cf.fetchBytes,
		Interval:   cf.fetchInterval,
		MaxLagSeqs: cf.maxLagSeqs,
		MaxLagAge:  cf.maxLagAge,
		Apply:      s.applyReplicated,
		Reset:      s.resetMirror,
		OnError: func(err error) {
			logger.Warn("replication fetch failed", "err", err)
		},
		// Fetch round-trips root "repl.fetch" spans whose IDs the leader's
		// ship spans continue, so replication is traceable end to end.
		Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	s.follower = f
	api.dist.SetReadOnly(true)
	base := s.obs.ready
	s.obs.ready = func() error {
		if err := base(); err != nil {
			return err
		}
		return f.ReadyErr()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	return cancel, nil
}

// runRouter serves the router role: no corpus, no log — just the ring,
// the prober, and the proxy, plus the shared observability surface.
func runRouter(addr string, cf clusterFlags) error {
	var peers []string
	for _, p := range strings.Split(cf.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:         peers,
		ProbeInterval: cf.probeInterval,
		Redirect:      cf.redirect,
		FanoutTimeout: cf.peerTimeout,
		LocalName:     cluster.RoleRouter,
		// The router's own fragment of a distributed trace joins the
		// merged /v1/cluster/traces/{id} document (nil-safe when off).
		LocalTrace: func(id string) *trace.TraceRecord { return tracer.Get(id) },
	})
	if err != nil {
		return err
	}
	o := newServerObs(func() error {
		if !rt.Ready() {
			return fmt.Errorf("no healthy leader among %d peers", len(peers))
		}
		return nil
	})
	o.info = func() serviceStatus {
		return serviceStatus{Name: "drmserver", Mode: cluster.RoleRouter, Entries: len(peers)}
	}
	o.roleInfo = func() cluster.RoleInfo {
		return cluster.RoleInfo{Role: cluster.RoleRouter, Ready: rt.Ready()}
	}
	rt.Start()
	defer rt.Stop()

	mux := http.NewServeMux()
	o.mountCommon(mux)
	o.wrap(mux, "GET /v1/cluster", rt.HandleCluster)
	o.wrap(mux, "GET /v1/cluster/status", rt.HandleClusterStatus)
	o.wrap(mux, "GET /v1/cluster/traces/{id}", rt.HandleClusterTrace)
	// Everything else is someone else's request: forward it to the
	// owning shard (or 307 there with -redirect). The empty pattern
	// names each root span "METHOD /path" so the router's fragment of a
	// forwarded request lines up with the peer's root by name.
	mux.Handle("/", traced("", o.httpm.Wrap("proxy", http.Handler(rt))))
	mode := "proxy"
	if cf.redirect {
		mode = "redirect"
	}
	logger.Info("drmserver routing", "peers", len(peers), "addr", addr,
		"forward", mode, "probe_interval", cf.probeInterval.String())
	return serve(addr, mux, o)
}
