package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// logger is the process-wide structured logger. run() replaces it
// according to -log-format/-log-level (wrapped in trace.LogHandler so
// request-scoped records carry a trace_id); handlers and serve() log
// through it.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// tracer is the process-wide request tracer; nil when -trace-sample is
// "off". A nil tracer starts no spans, so every instrumentation site
// below is a no-op and /debug/traces answers 404.
var tracer *trace.Tracer

// maxIssueBody caps POST issue request bodies; oversized requests get a
// structured 413. run() overrides it via -max-body.
var maxIssueBody int64 = 1 << 20

// serverObs bundles the observability state both server modes share: the
// metrics registry with all engine-layer hooks wired, the HTTP
// middleware, and health state. Constructing it per server (rather than
// per process) keeps the test servers self-contained; the package-level
// hooks simply point at the most recently constructed registry.
type serverObs struct {
	reg   *obs.Registry
	httpm *obs.HTTPMetrics
	// draining flips when graceful shutdown begins so load balancers
	// stop routing to this instance while in-flight requests finish.
	draining atomic.Bool
	// ready reports whether the corpus/catalog is loaded and servable.
	ready func() error
}

func newServerObs(ready func() error) *serverObs {
	reg := obs.NewRegistry()
	engine.InstrumentAll(reg)
	return &serverObs{reg: reg, httpm: obs.NewHTTPMetrics(reg), ready: ready}
}

// wrap mounts h on mux instrumented under the route pattern: a root
// trace span covering the whole request (metrics middleware included),
// then request counts by status class and a latency histogram.
func (o *serverObs) wrap(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, traced(pattern, o.httpm.Wrap(pattern, h)))
}

// traceStatusWriter records the response status for the root span and
// the request log line.
type traceStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *traceStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceStatusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced starts a root span named by the route pattern around next, so
// every layer below (engine, core, vtree, logstore, wal) hangs its spans
// off this request's trace. After the handler returns it marks error
// status (>= 400 — tail-sampling then always retains the trace), ends
// the root, and emits the request log line with the span-carrying
// context, so the line and any error body share one trace_id. With
// tracing off it is a pass-through.
func traced(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := tracer.Root(r.Context(), pattern)
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &traceStatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		sp.SetInt("status", int64(status))
		if status >= 400 {
			sp.Fail(fmt.Errorf("HTTP %d", status))
		}
		sp.End()
		lvl := slog.LevelInfo
		switch {
		case status >= 500:
			lvl = slog.LevelError
		case status >= 400:
			lvl = slog.LevelWarn
		}
		logger.LogAttrs(ctx, lvl, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status))
	})
}

// mountCommon adds the routes both server modes share: the Prometheus
// exposition, the retained-trace ring, drain-aware liveness, and
// readiness. The trace routes dereference the package tracer per request
// so they work (as 404s) when tracing is off.
func (o *serverObs) mountCommon(mux *http.ServeMux) {
	mux.Handle("GET /metrics", o.reg.Handler())
	mux.Handle("GET /debug/traces", traceHandler())
	mux.Handle("GET /debug/traces/{id}", traceHandler())
	o.wrap(mux, "GET /v1/healthz", o.handleHealthz)
	o.wrap(mux, "GET /v1/readyz", o.handleReadyz)
}

// traceHandler serves the package tracer's ring; nil-safe (404 when
// tracing is off).
func traceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tracer.Handler().ServeHTTP(w, r)
	})
}

// handleHealthz is liveness: 200 while serving, 503 once graceful
// shutdown has begun (the drain window).
func (o *serverObs) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if o.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 once the corpus/catalog is loaded.
func (o *serverObs) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := o.ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
