package main

import (
	"log/slog"
	"net/http"
	"os"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// logger is the process-wide structured logger. run() replaces it
// according to -log-format; handlers and serve() log through it.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// maxIssueBody caps POST issue request bodies; oversized requests get a
// structured 413. run() overrides it via -max-body.
var maxIssueBody int64 = 1 << 20

// serverObs bundles the observability state both server modes share: the
// metrics registry with all engine-layer hooks wired, the HTTP
// middleware, and health state. Constructing it per server (rather than
// per process) keeps the test servers self-contained; the package-level
// hooks simply point at the most recently constructed registry.
type serverObs struct {
	reg   *obs.Registry
	httpm *obs.HTTPMetrics
	// draining flips when graceful shutdown begins so load balancers
	// stop routing to this instance while in-flight requests finish.
	draining atomic.Bool
	// ready reports whether the corpus/catalog is loaded and servable.
	ready func() error
}

func newServerObs(ready func() error) *serverObs {
	reg := obs.NewRegistry()
	engine.InstrumentAll(reg)
	return &serverObs{reg: reg, httpm: obs.NewHTTPMetrics(reg), ready: ready}
}

// wrap mounts h on mux instrumented under the route pattern, so every
// endpoint gets request counts by status class and a latency histogram.
func (o *serverObs) wrap(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, o.httpm.Wrap(pattern, h))
}

// mountCommon adds the routes both server modes share: the Prometheus
// exposition, drain-aware liveness, and readiness.
func (o *serverObs) mountCommon(mux *http.ServeMux) {
	mux.Handle("GET /metrics", o.reg.Handler())
	o.wrap(mux, "GET /v1/healthz", o.handleHealthz)
	o.wrap(mux, "GET /v1/readyz", o.handleReadyz)
}

// handleHealthz is liveness: 200 while serving, 503 once graceful
// shutdown has begun (the drain window).
func (o *serverObs) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if o.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 once the corpus/catalog is loaded.
func (o *serverObs) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := o.ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
