package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/trace"
)

// logger is the process-wide structured logger. run() replaces it
// according to -log-format/-log-level (wrapped in trace.LogHandler so
// request-scoped records carry a trace_id); handlers and serve() log
// through it.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// tracer is the process-wide request tracer; nil when -trace-sample is
// "off". A nil tracer starts no spans, so every instrumentation site
// below is a no-op and /debug/traces answers 404.
var tracer *trace.Tracer

// maxIssueBody caps POST issue request bodies; oversized requests get a
// structured 413. run() overrides it via -max-body.
var maxIssueBody int64 = 1 << 20

// sloObjectives are the service-level objectives every server
// constructed in this process evaluates; run() overrides them via
// -slo-latency / -slo-latency-target / -slo-availability.
var sloObjectives = slo.DefaultObjectives()

// telemetryInterval paces the runtime/SLO sampling ticker serve()
// starts; zero disables it (handler-level tests and scrape-on-demand
// still work). run() overrides it via -telemetry-interval.
var telemetryInterval time.Duration

// serverObs bundles the observability state both server modes share: the
// metrics registry with all engine-layer hooks wired, the HTTP
// middleware, the SLO service (sliding windows, burn rates, heavy
// hitters), the runtime telemetry collector, and health state.
// Constructing it per server (rather than per process) keeps the test
// servers self-contained; the package-level hooks simply point at the
// most recently constructed registry.
type serverObs struct {
	reg     *obs.Registry
	httpm   *obs.HTTPMetrics
	slo     *slo.Service
	runtime *obs.Runtime
	start   time.Time
	// draining flips when graceful shutdown begins so load balancers
	// stop routing to this instance while in-flight requests finish.
	draining atomic.Bool
	// ready reports whether the corpus/catalog is loaded and servable.
	ready func() error
	// info summarises the serving state for /v1/status; set by the mode
	// constructor after the corpus/catalog is loaded.
	info func() serviceStatus
	// walBacklog sums the fsync backlog over the mode's WAL-backed logs
	// (nil when none).
	walBacklog func() int64
	// roleInfo answers the cluster role probe (GET /v1/repl/role); nil
	// defaults to a ready standalone, which is also what pre-cluster
	// peers effectively report (routers treat a 404 probe the same way).
	roleInfo func() cluster.RoleInfo
	// repl supplies the replication block of /v1/status (nil omits it).
	repl func() *replicationStatus
}

func newServerObs(ready func() error) *serverObs {
	reg := obs.NewRegistry()
	engine.InstrumentAll(reg)
	o := &serverObs{
		reg:   reg,
		httpm: obs.NewHTTPMetrics(reg),
		slo:   slo.NewService(reg, sloObjectives, slo.TrackerConfig{}),
		start: time.Now(),
		ready: ready,
	}
	// Metric→trace exemplars: traced requests stamp their trace ID on
	// the latency bucket they land in.
	o.httpm.ExemplarID = trace.IDFromContext
	// Heavy-hitter attribution follows the InstrumentAll discipline: the
	// package hook points at the most recently constructed server.
	engine.Hitters = o.slo.Hitters()
	o.runtime = obs.NewRuntime(reg, func() int64 {
		if o.walBacklog == nil {
			return 0
		}
		return o.walBacklog()
	})
	return o
}

// wrap mounts h on mux instrumented under the route pattern: a root
// trace span covering the whole request, SLO window/burn tracking, then
// request counts by status class and a latency histogram.
func (o *serverObs) wrap(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, traced(pattern, o.sloObserved(o.slo.Endpoint(pattern), o.httpm.Wrap(pattern, h))))
}

// wrapUntracked is wrap without the SLO layer — health and readiness
// probes answer 503 by design (drain, warm-up) and must not burn the
// availability budget.
func (o *serverObs) wrapUntracked(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, traced(pattern, o.httpm.Wrap(pattern, h)))
}

// sloObserved feeds the endpoint's sliding window and burn ring: 5xx
// responses burn the availability budget, requests at or over the
// latency threshold burn the latency budget and have their traces
// force-retained so the exemplars pointing at them stay resolvable in
// /debug/traces.
func (o *serverObs) sloObserved(t *slo.Tracker, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &traceStatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		d := time.Since(start)
		t.Observe(d, status >= 500)
		if thr := o.slo.LatencyThreshold(); thr > 0 && d >= thr {
			trace.SpanFromContext(r.Context()).Retain()
		}
	})
}

// entryObserved feeds one catalog entry's sliding window, inside the
// endpoint instrumentation.
func entryObserved(t *slo.Tracker, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &traceStatusWriter{ResponseWriter: w}
		next(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		t.Observe(time.Since(start), status >= 500)
	}
}

// drainGuard refuses requests with a typed 503 once graceful shutdown
// has begun, so operators polling /v1/slo or /v1/headroom see an
// explicit "unavailable" instead of racing the listener close.
func (o *serverObs) drainGuard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if o.draining.Load() {
			writeError(r.Context(), w,
				drmerr.New(drmerr.KindUnavailable, "drmserver", "server draining, retry another instance"))
			return
		}
		h(w, r)
	}
}

// startTelemetry runs the sampling ticker: runtime gauges plus SLO
// gauge refresh every interval. The returned stop joins the goroutine.
func (o *serverObs) startTelemetry(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				o.runtime.Sample()
				o.slo.Refresh()
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// traceStatusWriter records the response status for the root span and
// the request log line.
type traceStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *traceStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceStatusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced starts a root span named by the route pattern around next, so
// every layer below (engine, core, vtree, logstore, wal) hangs its spans
// off this request's trace. An incoming traceparent header (a request
// forwarded by the router, or a follower's replication fetch) is
// extracted first: the root then continues the upstream trace ID
// instead of minting one, which is what lets /v1/cluster/traces/{id}
// merge the per-process fragments. An empty pattern (the router's
// catch-all proxy route) names the root "METHOD /path" per request, so
// router roots line up with the leader roots they forward to. After the
// handler returns it marks error status (>= 400 — tail-sampling then
// always retains the trace), ends the root, and emits the request log
// line with the span-carrying context, so the line and any error body
// share one trace_id. With tracing off it is a pass-through.
func traced(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			next.ServeHTTP(w, r)
			return
		}
		name := pattern
		if name == "" {
			name = r.Method + " " + r.URL.Path
		}
		var ctx context.Context
		var sp *trace.Span
		if rp, ok := trace.Extract(r.Header); ok {
			ctx, sp = tracer.RootRemote(r.Context(), name, rp)
		} else {
			ctx, sp = tracer.Root(r.Context(), name)
		}
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &traceStatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		sp.SetInt("status", int64(status))
		if status >= 400 {
			sp.Fail(fmt.Errorf("HTTP %d", status))
		}
		sp.End()
		lvl := slog.LevelInfo
		switch {
		case status >= 500:
			lvl = slog.LevelError
		case status >= 400:
			lvl = slog.LevelWarn
		}
		logger.LogAttrs(ctx, lvl, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status))
	})
}

// mountCommon adds the routes both server modes share: the Prometheus/
// OpenMetrics exposition (SLO gauges refreshed per scrape), the unified
// status pane, the machine-readable SLO state, the retained-trace ring,
// drain-aware liveness, and readiness. The trace routes dereference the
// package tracer per request so they work (as 404s) when tracing is off.
func (o *serverObs) mountCommon(mux *http.ServeMux) {
	mux.Handle("GET /metrics", o.metricsHandler())
	mux.Handle("GET /debug/traces", traceHandler())
	mux.Handle("GET /debug/traces/{id}", traceHandler())
	o.wrap(mux, "GET /v1/status", o.handleStatus)
	o.wrap(mux, "GET /v1/slo", o.drainGuard(o.handleSLO))
	o.wrapUntracked(mux, "GET /v1/healthz", o.handleHealthz)
	o.wrapUntracked(mux, "GET /v1/readyz", o.handleReadyz)
	o.wrapUntracked(mux, "GET /v1/repl/role", o.handleRole)
}

// handleRole is the cluster role probe routers and operators poll: the
// instance's role, readiness, durable sequence, and — for followers —
// replication lag and leader.
func (o *serverObs) handleRole(w http.ResponseWriter, r *http.Request) {
	if o.roleInfo != nil {
		writeJSON(w, http.StatusOK, o.roleInfo())
		return
	}
	writeJSON(w, http.StatusOK, cluster.RoleInfo{
		Role:  cluster.RoleStandalone,
		Ready: o.ready() == nil && !o.draining.Load(),
	})
}

// metricsHandler refreshes the drm_slo_* gauges before every scrape so
// burn rates and windowed quantiles are current, then defers to the
// registry's content-negotiating exposition handler.
func (o *serverObs) metricsHandler() http.Handler {
	inner := o.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.slo.Refresh()
		inner.ServeHTTP(w, r)
	})
}

// traceHandler serves the package tracer's ring; nil-safe (404 when
// tracing is off).
func traceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tracer.Handler().ServeHTTP(w, r)
	})
}

// handleHealthz is liveness: 200 while serving, 503 once graceful
// shutdown has begun (the drain window).
func (o *serverObs) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if o.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 once the corpus/catalog is loaded —
// and, on a follower, once replication lag is inside -max-lag. Errors
// in the drmerr taxonomy (a lagging replica's KindReplicaLag, say)
// answer with the typed {error, kind} body so orchestrators can
// distinguish "still catching up" from "corpus missing".
func (o *serverObs) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := o.ready(); err != nil {
		if drmerr.KindOf(err) != drmerr.KindUnknown {
			writeJSON(w, http.StatusServiceUnavailable, body(r.Context(), err))
			return
		}
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
