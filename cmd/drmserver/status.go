package main

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/slo"
)

// serviceStatus is the serving-state block of /v1/status; the mode
// constructors fill the corpus-shaped fields, the handler stamps
// uptime and drain state.
type serviceStatus struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Entries       int     `json:"entries"`
	Licenses      int     `json:"licenses"`
	Groups        int     `json:"groups"`
	LogRecords    int     `json:"log_records"`
}

// traceRingStatus summarises the tail sampler for /v1/status.
type traceRingStatus struct {
	Enabled   bool  `json:"enabled"`
	Sampled   int64 `json:"sampled"`
	Dropped   int64 `json:"dropped"`
	Retained  int   `json:"retained"`
	Evictions int64 `json:"evictions"`
}

// exemplarRef is one metric→trace link: a retained latency observation
// whose trace is resolvable at TraceURL. Only observations at or over
// the latency SLO threshold are listed — those are the traces the SLO
// layer force-retains — and each candidate is checked against the live
// ring, so the link never dangles.
type exemplarRef struct {
	Metric       string  `json:"metric"`
	Scope        string  `json:"scope"`
	LE           string  `json:"le"`
	ValueSeconds float64 `json:"value_seconds"`
	TraceID      string  `json:"trace_id"`
	TraceURL     string  `json:"trace_url"`
	UnixNanos    int64   `json:"unix_ns"`
}

// statusResponse is the single operator pane: serving state, SLO
// evaluation, windowed per-scope latency, heavy hitters, runtime
// telemetry, trace-ring state, and the exemplar links into
// /debug/traces.
type statusResponse struct {
	Service serviceStatus `json:"service"`
	// Replication is the cluster-role block: role, readiness, durable
	// sequence, and — on followers — lag against the leader. Omitted by
	// servers constructed before the role wiring runs (tests).
	Replication  *replicationStatus  `json:"replication,omitempty"`
	SLO          slo.Status          `json:"slo"`
	HeavyHitters slo.HittersSnapshot `json:"heavy_hitters"`
	Runtime      obs.RuntimeSample   `json:"runtime"`
	Traces       traceRingStatus     `json:"traces"`
	Exemplars    []exemplarRef       `json:"exemplars"`
}

func (o *serverObs) serviceStatus() serviceStatus {
	st := serviceStatus{Name: "drmserver"}
	if o.info != nil {
		st = o.info()
	}
	st.Draining = o.draining.Load()
	st.UptimeSeconds = time.Since(o.start).Seconds()
	return st
}

func (o *serverObs) traceStatus() traceRingStatus {
	st := traceRingStatus{Enabled: tracer != nil}
	if tracer == nil {
		return st
	}
	st.Sampled = tracer.Sampled()
	st.Dropped = tracer.Dropped()
	st.Retained = len(tracer.Traces())
	st.Evictions = tracer.Evictions()
	return st
}

// exemplarRefs collects the retained latency exemplars (HTTP endpoints
// plus the engine issue histogram), filtered to the latency-SLO
// threshold when one is set, sorted slowest first.
func (o *serverObs) exemplarRefs() []exemplarRef {
	thr := o.slo.LatencyThreshold().Seconds()
	var out []exemplarRef
	add := func(metric, scope string, exs []obs.Exemplar) {
		for _, e := range exs {
			if thr > 0 && e.Value < thr {
				continue
			}
			// Only link traces still live in the ring: an exemplar can
			// outlive its trace (untracked endpoints are never
			// force-retained, and retained traces can be evicted).
			if tracer.Get(e.TraceID) == nil {
				continue
			}
			out = append(out, exemplarRef{
				Metric:       metric,
				Scope:        scope,
				LE:           obs.FormatFloat(e.LE),
				ValueSeconds: e.Value,
				TraceID:      e.TraceID,
				TraceURL:     "/debug/traces/" + e.TraceID,
				UnixNanos:    e.UnixNanos,
			})
		}
	}
	for endpoint, exs := range o.httpm.Exemplars() {
		add("drm_http_request_seconds", endpoint, exs)
	}
	add("drm_engine_issue_seconds", "engine.issue", engine.M.IssueSeconds.Exemplars())
	sort.Slice(out, func(i, j int) bool {
		if out[i].ValueSeconds != out[j].ValueSeconds {
			return out[i].ValueSeconds > out[j].ValueSeconds
		}
		return out[i].Scope < out[j].Scope
	})
	return out
}

// handleSLO is the machine-readable SLO state: objectives with
// multi-window burn rates and alert verdicts, plus the windowed
// per-scope summaries. Refresh also updates the drm_slo_* gauges, so a
// poller and a scraper see the same numbers.
func (o *serverObs) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, o.slo.Refresh())
}

// handleStatus composes the unified operator pane. ?format=text (or an
// Accept header preferring text/plain) renders the human-readable
// version of the same data.
func (o *serverObs) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := statusResponse{
		Service:      o.serviceStatus(),
		SLO:          o.slo.Refresh(),
		HeavyHitters: o.slo.Hitters().Snapshot(),
		Runtime:      o.runtime.Sample(),
		Traces:       o.traceStatus(),
		Exemplars:    o.exemplarRefs(),
	}
	if o.repl != nil {
		resp.Replication = o.repl()
	}
	if r.URL.Query().Get("format") == "text" ||
		strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderStatusText(resp))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func fmtSeconds(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// renderStatusText is the terminal-friendly pane: the same content as
// the JSON, formatted for a human mid-incident.
func renderStatusText(s statusResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mode %s, uptime %s, draining %v\n",
		s.Service.Name, s.Service.Mode,
		time.Duration(s.Service.UptimeSeconds*float64(time.Second)).Round(time.Second),
		s.Service.Draining)
	fmt.Fprintf(&b, "entries %d, licenses %d, groups %d, log records %d\n",
		s.Service.Entries, s.Service.Licenses, s.Service.Groups, s.Service.LogRecords)
	if r := s.Replication; r != nil {
		fmt.Fprintf(&b, "replication: role %s, ready %v, seq %d", r.Role, r.Ready, r.Seq)
		if r.Role == "follower" {
			fmt.Fprintf(&b, ", leader %s, lag %d seqs (%.2fs)", r.Leader, r.LagSeqs, r.LagSeconds)
		}
		if r.Promoted {
			b.WriteString(", promoted")
		}
		b.WriteByte('\n')
	}

	b.WriteString("\nSLO objectives\n")
	if len(s.SLO.Objectives) == 0 {
		b.WriteString("  (disabled)\n")
	}
	for _, o := range s.SLO.Objectives {
		fmt.Fprintf(&b, "  %-12s target %.4g%%", o.Name, o.Target*100)
		if o.ThresholdSeconds > 0 {
			fmt.Fprintf(&b, " under %s", fmtSeconds(o.ThresholdSeconds))
		}
		fmt.Fprintf(&b, "  budget remaining %.1f%%\n", o.BudgetRemaining*100)
		b.WriteString("    burn")
		for _, w := range o.Windows {
			fmt.Fprintf(&b, "  %s=%.2f (%d/%d bad)", w.Window, w.BurnRate, w.Bad, w.Requests)
		}
		b.WriteByte('\n')
		for _, a := range o.Alerts {
			state := "ok"
			if a.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(&b, "    alert %-7s (%s+%s > %.1fx): %s\n",
				a.Severity, a.ShortWindow, a.LongWindow, a.Threshold, state)
		}
	}

	writeScopes := func(title string, scopes []slo.ScopeWindow) {
		if len(scopes) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s (last %s)\n", title,
			time.Duration(scopes[0].WindowSeconds*float64(time.Second)).Round(time.Second))
		for _, sc := range scopes {
			fmt.Fprintf(&b, "  %-40s %6d req  err %5.2f%%  p50 %-9s p95 %-9s p99 %s\n",
				sc.Name, sc.Requests, sc.ErrorRate*100,
				fmtSeconds(sc.P50Seconds), fmtSeconds(sc.P95Seconds), fmtSeconds(sc.P99Seconds))
		}
	}
	writeScopes("Endpoints", s.SLO.Endpoints)
	writeScopes("Entries", s.SLO.Entries)

	writeHitters := func(title string, rows []slo.HitterCount, unit string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&b, "  %s:", title)
		n := len(rows)
		if n > 5 {
			n = 5
		}
		for _, r := range rows[:n] {
			fmt.Fprintf(&b, "  %s=%d%s", r.Item, r.Weight, unit)
		}
		b.WriteByte('\n')
	}
	if len(s.HeavyHitters.Entries.ByRequests)+len(s.HeavyHitters.Groups.ByRequests) > 0 {
		b.WriteString("\nHeavy hitters\n")
		writeHitters("entries by requests", s.HeavyHitters.Entries.ByRequests, "")
		writeHitters("entries by latency", s.HeavyHitters.Entries.ByLatencyNS, "ns")
		writeHitters("entries by rejections", s.HeavyHitters.Entries.ByRejections, "")
		writeHitters("groups by requests", s.HeavyHitters.Groups.ByRequests, "")
		writeHitters("groups by latency", s.HeavyHitters.Groups.ByLatencyNS, "ns")
		writeHitters("groups by rejections", s.HeavyHitters.Groups.ByRejections, "")
	}

	fmt.Fprintf(&b, "\nRuntime: %d goroutines, heap %d MiB (%d MiB sys), %d GC cycles (%.1fms paused), %d fds, wal backlog %d\n",
		s.Runtime.Goroutines, s.Runtime.HeapAllocBytes>>20, s.Runtime.HeapSysBytes>>20,
		s.Runtime.GCCycles, s.Runtime.GCPauseTotalSeconds*1e3, s.Runtime.OpenFDs, s.Runtime.WALFsyncBacklog)
	fmt.Fprintf(&b, "Traces: enabled %v, %d sampled, %d dropped, %d retained, %d evicted\n",
		s.Traces.Enabled, s.Traces.Sampled, s.Traces.Dropped, s.Traces.Retained, s.Traces.Evictions)
	if len(s.Exemplars) > 0 {
		b.WriteString("Slow-request exemplars (→ /debug/traces/{id}):\n")
		n := len(s.Exemplars)
		if n > 10 {
			n = 10
		}
		for _, e := range s.Exemplars[:n] {
			fmt.Fprintf(&b, "  %-40s %-9s le=%s trace=%s\n",
				e.Scope, fmtSeconds(e.ValueSeconds), e.LE, e.TraceID)
		}
	}
	return b.String()
}
