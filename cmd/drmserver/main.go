// Command drmserver exposes one distributor's license corpus as an HTTP
// validation service: consumers request issuances, the server runs
// instance validation (R-tree containment) and — in online mode —
// aggregate validation (equation headroom), logging every accepted
// issuance; auditors fetch offline validation reports.
//
// Usage:
//
//	drmserver -corpus corpus.json -log issued.jsonl -addr :8080 -mode online
//	drmserver -catalog ./catalog-dir -addr :8080 -mode online
//
// Single-corpus endpoints:
//
//	GET  /v1/corpus  → the corpus document (as written by drmgen)
//	GET  /v1/groups  → overlap grouping and theoretical gain
//	POST /v1/issue   → {"values":[{"lo":..,"hi":..}|{"set":[..]}, ...],
//	                    "count": 25, "kind": "usage", "ttl_seconds": 3600}
//	POST /v1/revoke  → {"values": [...], "count": 10} — take counts back
//	POST /v1/transfer → {"values": [...], "count": 10} — re-home counts
//	POST /v1/expire  → {"now": <unix>?} — run one expiry sweep on demand
//	GET  /v1/audit   → grouped offline validation report
//	GET  /v1/headroom → admission-cache debug view (per-group min slack)
//	GET  /v1/healthz → liveness (503 once graceful shutdown begins)
//	GET  /v1/readyz  → readiness (corpus/catalog loaded)
//	GET  /metrics    → Prometheus text exposition
//
// Catalog mode serves many (content, permission) corpora from a directory
// (see internal/catalog for the layout):
//
//	GET  /v1/contents                        → entry listing
//	GET  /v1/c/{content}/{perm}/corpus       (and /groups, /audit, /headroom)
//	POST /v1/c/{content}/{perm}/issue
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/headroom"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/signature"
	"repro/internal/slo"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drmserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		corpusPath = flag.String("corpus", "corpus.json", "corpus document path (single-corpus mode)")
		logPath    = flag.String("log", "issued.jsonl",
			"durable issuance log path (single-corpus mode): a JSONL file, or a WAL directory with -log-backend wal")
		catalogPath = flag.String("catalog", "", "catalog directory (multi-content mode; overrides -corpus/-log)")
		logBackend  = flag.String("log-backend", "jsonl",
			"issuance log backend for new logs: jsonl or wal (existing logs auto-detect)")
		fsyncMode = flag.String("fsync", "always",
			"WAL durability policy: always, os, or interval[=duration] (group commit)")
		segmentBytes = flag.Int64("segment-bytes", 0,
			"WAL segment rotation size in bytes (0 = 64 MiB default)")
		snapshotEvery = flag.Int("snapshot-every", 0,
			"WAL auto-snapshot after this many appends (0 = snapshot only via POST /v1/snapshot and at shutdown)")
		addr    = flag.String("addr", ":8080", "listen address")
		mode    = flag.String("mode", "online", "validation mode: online or offline")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"audit parallelism: groups × intra-group shards (default: all CPUs)")
		signed      = flag.Bool("signed", false, "treat -corpus as an Ed25519-signed document and verify it")
		issuerKey   = flag.String("issuer", "", "pinned issuer public key (base64; with -signed)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		traceSample = flag.String("trace-sample", "slow=250ms",
			"trace tail-sampling policy: off, all, error, or slow=<duration> (errors always retained; slow=0 retains everything)")
		traceRing = flag.Int("trace-ring", 256, "retained traces in the /debug/traces ring buffer")
		pprofAddr = flag.String("pprof-addr", "", "if set, serve net/http/pprof (and /debug/traces) on this address")
		maxBody   = flag.Int64("max-body", maxIssueBody, "max issue request body bytes (413 beyond)")
		reqTO     = flag.Duration("request-timeout", 0,
			"per-request deadline propagated through issuance and audits (0 disables); expired audits answer 504 with the verified-so-far report")
		readHeaderTO = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		readTO       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTO      = flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (bounds handler+response time)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		sloLatency   = flag.Duration("slo-latency", sloObjectives.LatencyThreshold,
			"latency SLO threshold: requests at or over this duration burn the latency budget (0 disables the latency objective)")
		sloLatencyTarget = flag.Float64("slo-latency-target", sloObjectives.LatencyTarget*100,
			"latency SLO target in percent: the share of requests that must finish under -slo-latency")
		sloAvailability = flag.Float64("slo-availability", sloObjectives.Availability*100,
			"availability SLO target in percent: the share of requests that must not answer 5xx (0 disables)")
		telemetryEvery = flag.Duration("telemetry-interval", 10*time.Second,
			"runtime/SLO telemetry sampling interval (0 disables the ticker; /metrics and /v1/status still sample on demand)")
		expireEvery = flag.Duration("expire-every", 0,
			"background expiry sweep interval debiting due TTL issuances (0 disables; POST /v1/expire sweeps on demand)")
		transferCap = flag.Int64("transfer-cap", 0,
			"cumulative per-set transfer cap enforced in online mode (0 = unlimited)")
		role  = flag.String("role", "standalone", "cluster role: standalone, leader, follower, or router")
		peers = flag.String("peers", "",
			"comma-separated peer base URLs the router shards over (role router)")
		leaderURL = flag.String("leader", "",
			"leader base URL to replicate from (role follower)")
		maxLag = flag.String("max-lag", "0",
			"replication lag bound before a follower reports unready: a record count or a duration like 5s (0 disables)")
		fetchInterval = flag.Duration("fetch-interval", time.Second,
			"follower WAL fetch interval")
		probeInterval = flag.Duration("probe-interval", 2*time.Second,
			"router peer role-probe interval")
		redirect = flag.Bool("redirect", false,
			"router answers 307 redirects to the owning shard instead of proxying")
		peerTimeout = flag.Duration("peer-timeout", cluster.DefaultFanoutTimeout,
			"router per-peer timeout for fleet fan-outs (/v1/cluster/status, /v1/cluster/traces)")
	)
	flag.Parse()
	if *workers < 1 {
		return fmt.Errorf("workers = %d, want >= 1", *workers)
	}
	if *maxBody < 1 {
		return fmt.Errorf("max-body = %d, want >= 1", *maxBody)
	}
	maxIssueBody = *maxBody
	switch *role {
	case "standalone", cluster.RoleLeader, cluster.RoleFollower, cluster.RoleRouter:
	default:
		return fmt.Errorf("unknown role %q (want standalone, leader, follower, or router)", *role)
	}
	maxLagSeqs, maxLagAge, err := cluster.ParseMaxLag(*maxLag)
	if err != nil {
		return err
	}
	clf := clusterFlags{
		role:          *role,
		peers:         *peers,
		leader:        *leaderURL,
		maxLagSeqs:    maxLagSeqs,
		maxLagAge:     maxLagAge,
		fetchInterval: *fetchInterval,
		probeInterval: *probeInterval,
		redirect:      *redirect,
		peerTimeout:   *peerTimeout,
	}
	if clf.role == cluster.RoleFollower && clf.leader == "" {
		return fmt.Errorf("role follower needs -leader")
	}
	if clf.role == cluster.RoleRouter && clf.peers == "" {
		return fmt.Errorf("role router needs -peers")
	}
	if *sloAvailability < 0 || *sloAvailability >= 100 {
		return fmt.Errorf("slo-availability = %g%%, want 0 <= target < 100", *sloAvailability)
	}
	if *sloLatencyTarget < 0 || *sloLatencyTarget >= 100 {
		return fmt.Errorf("slo-latency-target = %g%%, want 0 <= target < 100", *sloLatencyTarget)
	}
	if *sloLatency < 0 {
		return fmt.Errorf("slo-latency = %s, want >= 0", *sloLatency)
	}
	sloObjectives = slo.Objectives{
		Availability:     *sloAvailability / 100,
		LatencyTarget:    *sloLatencyTarget / 100,
		LatencyThreshold: *sloLatency,
	}
	telemetryInterval = *telemetryEvery
	srvTimeouts = serverTimeouts{
		readHeader: *readHeaderTO,
		read:       *readTO,
		write:      *writeTO,
		idle:       *idleTO,
		request:    *reqTO,
	}

	// The trace-correlating handler wraps the format/level handler so any
	// record logged with a request context gains its trace_id.
	h, err := obs.NewLogHandler(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		return err
	}
	logger = slog.New(trace.LogHandler(h))

	policy, traceOn, err := trace.ParsePolicy(*traceSample)
	if err != nil {
		return err
	}
	if traceOn {
		tracer = trace.New(trace.Options{Capacity: *traceRing, Policy: policy})
		logger.Info("tracing enabled", "sample", *traceSample, "ring", *traceRing)
	}

	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofMux.Handle("/debug/traces", traceHandler())
		pprofMux.Handle("/debug/traces/", traceHandler())
		// A real http.Server (not bare ListenAndServe) so the debug
		// listener gets a slowloris guard and participates in graceful
		// shutdown: serve() closes it during the drain window.
		sideSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux,
			ReadHeaderTimeout: srvTimeouts.readHeader,
		}
		go func() {
			err := sideSrv.ListenAndServe()
			if !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server exited", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	if clf.role == cluster.RoleRouter {
		// The router carries no corpus and no log: just the ring, the
		// prober, and the shared observability surface.
		return runRouter(*addr, clf)
	}

	var m engine.Mode
	switch *mode {
	case "online":
		m = engine.ModeOnline
	case "offline":
		m = engine.ModeOffline
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	backend, err := catalog.ParseBackend(*logBackend)
	if err != nil {
		return err
	}
	fsyncPolicy, fsyncInterval, err := wal.ParseFsync(*fsyncMode)
	if err != nil {
		return err
	}
	walOpts := wal.Options{
		SegmentBytes:  *segmentBytes,
		Fsync:         fsyncPolicy,
		Interval:      fsyncInterval,
		SnapshotEvery: *snapshotEvery,
	}

	if *catalogPath != "" {
		if clf.role != "standalone" {
			return fmt.Errorf("role %s needs single-corpus mode; shard catalogs with a router over single-corpus peers", clf.role)
		}
		cat, err := catalog.OpenWith(*catalogPath, catalog.Config{Mode: m, Backend: backend, WAL: walOpts})
		if err != nil {
			return err
		}
		defer cat.Close()
		// Drain-time checkpoint: once serve returns (requests drained) and
		// before the log closes, snapshot every WAL-backed entry so the next
		// open replays nothing.
		defer snapshotCatalogOnExit(cat)
		srv := newCatalogServer(cat, *workers)
		for _, e := range cat.Entries() {
			e.Dist.SetTransferCap(*transferCap)
		}
		if *expireEvery > 0 {
			defer startSweeper(*expireEvery, srv.sweepExpired)()
			logger.Info("expiry sweeper running", "interval", expireEvery.String())
		}
		logger.Info("drmserver listening", "catalog", *catalogPath,
			"entries", cat.Len(), "mode", m.String(), "addr", *addr, "log_backend", string(backend))
		return serve(*addr, srv.routes(), srv.obs)
	}

	cf, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	var corpus *license.Corpus
	if *signed {
		var trusted ed25519.PublicKey
		if *issuerKey != "" {
			trusted, err = signature.KeyFromString(*issuerKey)
			if err != nil {
				cf.Close()
				return err
			}
		}
		var pub ed25519.PublicKey
		corpus, pub, err = signature.ReadSignedCorpus(cf, trusted)
		cf.Close()
		if err != nil {
			return err
		}
		logger.Info("corpus signature verified", "issuer", signature.KeyToString(pub))
	} else {
		corpus, err = license.DecodeCorpus(cf)
		cf.Close()
		if err != nil {
			return err
		}
	}

	store, err := openLog(*logPath, backend, walOpts)
	if err != nil {
		return err
	}
	defer store.Close()
	// snapTarget names the store the drain-time checkpoint snapshots; a
	// follower re-bootstrap swaps in a fresh store, so the deferred
	// closure reads it late.
	var snapTarget func() *wal.Store
	if ws, ok := store.(*wal.Store); ok {
		st := ws.RecoveryStats()
		logger.Info("wal recovered", "snapshot_records", st.SnapshotRecords,
			"tail_records", st.TailRecords, "segments", st.SegmentsScanned,
			"truncated_bytes", st.TruncatedBytes, "duration", st.Duration.String())
		snapTarget = func() *wal.Store { return ws }
		// Drain-time checkpoint; runs before the deferred Close above.
		defer func() {
			info, err := snapTarget().Snapshot()
			if err != nil {
				logger.Error("final snapshot failed", "err", err)
				return
			}
			logger.Info("final snapshot installed", "records", info.Records, "seq", info.Seq)
		}()
	}

	srv, err := newServer(corpus, store, m, *workers)
	if err != nil {
		return err
	}
	srv.walOpts = walOpts
	srv.api.dist.SetTransferCap(*transferCap)
	if snapTarget != nil {
		snapTarget = func() *wal.Store { return srv.currentAPI().wal }
	}
	if clf.role == cluster.RoleLeader {
		srv.role = cluster.RoleLeader
		if srv.currentAPI().wal == nil {
			return fmt.Errorf("role leader needs a WAL-backed log (run with -log-backend wal)")
		}
	}
	if clf.role == cluster.RoleFollower {
		stopFollower, err := srv.startFollower(clf)
		if err != nil {
			return err
		}
		defer stopFollower()
		logger.Info("replicating", "leader", clf.leader,
			"fetch_interval", clf.fetchInterval.String(),
			"max_lag_seqs", clf.maxLagSeqs, "max_lag_age", clf.maxLagAge.String())
	}
	if *expireEvery > 0 {
		defer startSweeper(*expireEvery, srv.sweepExpired)()
		logger.Info("expiry sweeper running", "interval", expireEvery.String())
	}
	logger.Info("drmserver listening", "licenses", corpus.Len(),
		"mode", m.String(), "addr", *addr, "log_backend", string(backend), "role", clf.role)
	return serve(*addr, srv.routes(), srv.obs)
}

// openLog opens the single-corpus issuance log, auto-detecting the
// backend from what exists at path (a directory is a WAL, a file is
// JSONL) and falling back to the -log-backend flag for fresh logs.
func openLog(path string, backend catalog.Backend, walOpts wal.Options) (logstore.Durable, error) {
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return wal.Open(path, walOpts)
		}
		return logstore.OpenFile(path)
	}
	if backend == catalog.BackendWAL {
		return wal.Open(path, walOpts)
	}
	return logstore.OpenFile(path)
}

// snapshotCatalogOnExit checkpoints every WAL-backed entry, logging the
// outcome; JSONL-only catalogs do nothing.
func snapshotCatalogOnExit(cat *catalog.Catalog) {
	infos, err := cat.SnapshotAll()
	if err != nil {
		logger.Error("final snapshot failed", "err", err)
	}
	for e, info := range infos {
		logger.Info("final snapshot installed", "content", e.Content,
			"permission", string(e.Permission), "records", info.Records, "seq", info.Seq)
	}
}

// serverTimeouts carries the http.Server hardening knobs plus the
// per-request deadline from -request-timeout.
type serverTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	write      time.Duration
	idle       time.Duration
	request    time.Duration
}

// srvTimeouts is set from flags in run(); the zero value (no timeouts)
// keeps tests that call handlers directly unaffected.
var srvTimeouts serverTimeouts

// sideSrv is the pprof/debug side listener, when -pprof-addr is set;
// serve() shuts it down during the drain window so the process exits
// with no listener left behind.
var sideSrv *http.Server

// withRequestTimeout wraps handler so every request's context carries the
// given deadline. Handlers propagate r.Context() into issuance and
// audits, so an expired deadline surfaces as a typed 499/504 body instead
// of a hung connection.
func withRequestTimeout(handler http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return handler
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		handler.ServeHTTP(w, r.WithContext(ctx))
	})
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests before returning, so deferred log/catalog closes always run
// and buffered issuance records reach disk. The health state flips to
// draining before Shutdown, so /v1/healthz answers 503 for the whole
// drain window.
func serve(addr string, handler http.Handler, o *serverObs) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           withRequestTimeout(handler, srvTimeouts.request),
		ReadHeaderTimeout: srvTimeouts.readHeader,
		ReadTimeout:       srvTimeouts.read,
		WriteTimeout:      srvTimeouts.write,
		IdleTimeout:       srvTimeouts.idle,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if telemetryInterval > 0 {
		stopTelemetry := o.startTelemetry(telemetryInterval)
		defer stopTelemetry()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		o.draining.Store(true)
		logger.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if sideSrv != nil {
			if err := sideSrv.Shutdown(shutdownCtx); err != nil {
				logger.Error("pprof shutdown", "err", err)
			}
		}
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("drmserver: shutdown: %w", err)
		}
		return nil
	}
}

// corpusAPI serves one (content, permission) corpus. A reader/writer lock
// guards the Distributor: issuance mutates (log append, online tree
// insert) and takes the write lock; the read-only endpoints — corpus,
// groups, stats, audit — share a read lock, so concurrent validations and
// report fetches no longer serialise behind each other. The log store is
// internally synchronised for the concurrent-flush this allows. In
// catalog mode all entries share the catalog's lock.
type corpusAPI struct {
	mu      *sync.RWMutex
	corpus  *license.Corpus
	dist    *engine.Distributor
	workers int
	// wal is the entry's log when it is WAL-backed (snapshot endpoint);
	// nil for JSONL logs. The store synchronises snapshots internally, so
	// handleSnapshot does not take mu — appends proceed during a snapshot.
	wal *wal.Store
}

// server is the single-corpus mode: one corpusAPI at fixed routes.
// swapMu guards the api/repl fields themselves: handlers resolve the
// current corpusAPI per request (see currentAPI), so a follower
// re-bootstrap can swap in a fresh store and distributor atomically.
type server struct {
	swapMu  sync.RWMutex
	api     corpusAPI
	repl    *cluster.Leader
	obs     *serverObs
	role    string
	mode    engine.Mode
	walOpts wal.Options
	// follower is non-nil when this server replicates from a leader; it
	// is set once at startup and never swapped.
	follower *cluster.Follower
}

// buildDistributor assembles the engine state over a (possibly
// recovered) log: corpus registration, then — in online mode — the
// admission-cache warm-up so the first issuance pays no replay.
func buildDistributor(corpus *license.Corpus, store logstore.Durable, mode engine.Mode) (*engine.Distributor, error) {
	d := engine.NewDistributor("drmserver", corpus.Schema(), mode, store)
	for _, l := range corpus.Licenses() {
		cp := *l
		if _, err := d.AddRedistribution(&cp); err != nil {
			return nil, err
		}
	}
	if mode == engine.ModeOnline {
		if err := d.WarmHeadroom(context.Background()); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func newServer(corpus *license.Corpus, store logstore.Durable, mode engine.Mode, workers int) (*server, error) {
	d, err := buildDistributor(corpus, store, mode)
	if err != nil {
		return nil, err
	}
	o := newServerObs(func() error {
		if corpus.Len() == 0 {
			return errors.New("corpus empty")
		}
		return nil
	})
	ws, _ := store.(*wal.Store)
	srv := &server{
		api:  corpusAPI{mu: &sync.RWMutex{}, corpus: corpus, dist: d, workers: workers, wal: ws},
		obs:  o,
		role: cluster.RoleStandalone,
		mode: mode,
	}
	if ws != nil {
		srv.repl = cluster.NewLeader(ws, 0)
	}
	o.info = func() serviceStatus {
		api := srv.currentAPI()
		logLen := store.Len()
		if api.wal != nil {
			// Read the log length through the swap-aware handle: a
			// follower re-bootstrap replaces the WAL store.
			logLen = api.wal.Len()
		}
		return serviceStatus{
			Name:       "drmserver",
			Mode:       mode.String(),
			Entries:    1,
			Licenses:   corpus.Len(),
			Groups:     api.dist.NumGroups(),
			LogRecords: logLen,
		}
	}
	if ws != nil {
		o.walBacklog = func() int64 {
			if w := srv.currentAPI().wal; w != nil {
				return w.Backlog()
			}
			return 0
		}
	}
	o.roleInfo = srv.roleInfo
	o.repl = srv.replicationStatus
	return srv, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	s.obs.mountCommon(mux)
	// Single-corpus mode has one catalog entry; track it under "corpus"
	// so /v1/slo and /v1/status expose the same entry-scoped windows the
	// catalog mode does. Handlers resolve the current corpusAPI per
	// request through s.entry, so a follower re-bootstrap's store swap
	// is visible without remounting.
	entry := s.obs.slo.Entry("corpus")
	s.obs.wrap(mux, "GET /v1/corpus", s.entry(corpusAPI.handleCorpus))
	s.obs.wrap(mux, "GET /v1/groups", s.entry(corpusAPI.handleGroups))
	s.obs.wrap(mux, "POST /v1/issue", entryObserved(entry, s.entry(corpusAPI.handleIssue)))
	s.obs.wrap(mux, "POST /v1/revoke", entryObserved(entry, s.entry(corpusAPI.handleRevoke)))
	s.obs.wrap(mux, "POST /v1/transfer", entryObserved(entry, s.entry(corpusAPI.handleTransfer)))
	s.obs.wrap(mux, "POST /v1/expire", entryObserved(entry, s.entry(corpusAPI.handleExpire)))
	s.obs.wrap(mux, "GET /v1/audit", entryObserved(entry, s.entry(corpusAPI.handleAudit)))
	s.obs.wrap(mux, "GET /v1/stats", s.entry(corpusAPI.handleStats))
	s.obs.wrap(mux, "GET /v1/headroom", s.obs.drainGuard(s.entry(corpusAPI.handleHeadroom)))
	s.obs.wrap(mux, "POST /v1/snapshot", s.entry(corpusAPI.handleSnapshot))
	// Replication: the serving side any WAL-backed server exposes, plus
	// the follower's promotion trigger. Untracked like the health probes
	// — a follower's poll loop must not burn the SLO budget.
	s.obs.wrapUntracked(mux, "GET /v1/repl/wal", s.handleReplWAL)
	s.obs.wrapUntracked(mux, "GET /v1/repl/snapshot", s.handleReplSnapshot)
	s.obs.wrap(mux, "POST /v1/promote", s.handlePromote)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logger.Error("encoding response", "err", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
	// Kind is the drmerr taxonomy name ("violation", "incomplete", ...),
	// empty for errors outside the taxonomy.
	Kind string `json:"kind,omitempty"`
	// TraceID is the request's trace (when tracing is on), the handle a
	// caller quotes to pull the full span tree from /debug/traces/{id} —
	// error traces are always retained by the sampler.
	TraceID string `json:"trace_id,omitempty"`
}

// body builds the structured error body for a classified error,
// stamping the request's trace ID when the context carries one.
func body(ctx context.Context, err error) errorBody {
	b := errorBody{Error: err.Error(), TraceID: trace.IDFromContext(ctx)}
	if k := drmerr.KindOf(err); k != drmerr.KindUnknown {
		b.Kind = k.String()
	}
	return b
}

// clientError writes a plain client-fault body (bad JSON, unknown kind,
// oversized request) with the request's trace ID attached.
func clientError(ctx context.Context, w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, TraceID: trace.IDFromContext(ctx)})
}

// writeError maps a pipeline error to its taxonomy HTTP status (409
// violation, 422 model errors, 499 client cancelled, 503 store corrupt,
// 504 deadline-cut audit, ...) with a structured JSON body.
func writeError(ctx context.Context, w http.ResponseWriter, err error) {
	writeJSON(w, drmerr.HTTPStatus(err), body(ctx, err))
}

func (s corpusAPI) handleCorpus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := license.EncodeCorpus(w, s.corpus); err != nil {
		logger.Error("encoding corpus", "err", err)
	}
}

type groupsBody struct {
	Groups [][]int `json:"groups"` // one-based license numbers per group
	Gain   float64 `json:"gain"`
}

func (s corpusAPI) handleGroups(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	gr := overlap.GroupsOf(s.corpus)
	body := groupsBody{Gain: core.Gain(gr)}
	for _, g := range gr.Groups {
		var ids []int
		g.Members.ForEach(func(j int) bool { ids = append(ids, j+1); return true })
		body.Groups = append(body.Groups, ids)
	}
	writeJSON(w, http.StatusOK, body)
}

type issueRequest struct {
	Values []license.ValueDoc `json:"values"`
	Count  int64              `json:"count"`
	Kind   string             `json:"kind"` // "usage" (default) or "redistribution"
	// TTLSeconds, when positive, makes the issuance time-limited: its
	// record carries expiry = now + TTLSeconds, and an expiry sweep past
	// that moment debits the counts back. Expiry (absolute Unix seconds)
	// wins when both are set.
	TTLSeconds int64 `json:"ttl_seconds,omitempty"`
	Expiry     int64 `json:"expiry,omitempty"`
}

type issueResponse struct {
	Name      string `json:"name"`
	BelongsTo []int  `json:"belongs_to"` // one-based license numbers
	Count     int64  `json:"count"`
}

func (s corpusAPI) handleIssue(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIssueBody)
	var req issueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			clientError(r.Context(), w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		clientError(r.Context(), w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	kind := license.Usage
	switch req.Kind {
	case "", "usage":
	case "redistribution":
		kind = license.Redistribution
	default:
		clientError(r.Context(), w, http.StatusBadRequest, "unknown kind "+req.Kind)
		return
	}
	rect, err := license.BuildRect(s.corpus.Schema(), req.Values)
	if err != nil {
		clientError(r.Context(), w, http.StatusBadRequest, err.Error())
		return
	}
	expiry := req.Expiry
	if expiry == 0 && req.TTLSeconds > 0 {
		expiry = time.Now().Unix() + req.TTLSeconds
	}
	s.mu.Lock()
	var issued *license.License
	if expiry > 0 {
		issued, err = s.dist.IssueTTLContext(r.Context(), kind, rect, req.Count, expiry)
	} else {
		issued, err = s.dist.IssueContext(r.Context(), kind, rect, req.Count)
	}
	var belongs []int
	if err == nil {
		s.dist.BelongsTo(rect).ForEach(func(j int) bool {
			belongs = append(belongs, j+1)
			return true
		})
	}
	s.mu.Unlock()
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, issueResponse{
			Name:      issued.Name,
			BelongsTo: belongs,
			Count:     issued.Aggregate,
		})
	case drmerr.KindOf(err) != drmerr.KindUnknown:
		// Taxonomy errors carry their own status: 422 instance-invalid,
		// 409 aggregate violation, 400 invalid input, 499 cancelled, ...
		writeError(r.Context(), w, err)
	default:
		clientError(r.Context(), w, http.StatusBadRequest, err.Error())
	}
}

type statsResponse struct {
	Licenses          int   `json:"licenses"`
	Groups            int   `json:"groups"`
	Issued            int   `json:"issued"`
	IssuedCounts      int64 `json:"issued_counts"`
	RejectedInstance  int   `json:"rejected_instance"`
	RejectedAggregate int   `json:"rejected_aggregate"`
	Revoked           int   `json:"revoked"`
	RevokedCounts     int64 `json:"revoked_counts"`
	Expired           int   `json:"expired"`
	ExpiredCounts     int64 `json:"expired_counts"`
	Transferred       int   `json:"transferred"`
	TransferredCounts int64 `json:"transferred_counts"`
}

func (s corpusAPI) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	st := s.dist.Stats()
	body := statsResponse{
		Licenses:          s.corpus.Len(),
		Groups:            s.dist.NumGroups(), // read-only on the union-find
		Issued:            st.Issued,
		IssuedCounts:      st.IssuedCounts,
		RejectedInstance:  st.RejectedInstance,
		RejectedAggregate: st.RejectedAggregate,
		Revoked:           st.Revoked,
		RevokedCounts:     st.RevokedCounts,
		Expired:           st.Expired,
		ExpiredCounts:     st.ExpiredCounts,
		Transferred:       st.Transferred,
		TransferredCounts: st.TransferredCounts,
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, body)
}

type headroomResponse struct {
	// Pending counts admissions applied to the cache whose log appends
	// have not confirmed yet (transiently non-zero under load).
	Pending int64 `json:"pending"`
	// Groups is the per-group slack state: mode (dense table vs sparse
	// closure walk), observed-span shape, and the minimum remaining slack.
	Groups []headroom.GroupSummary `json:"groups"`
}

// handleHeadroom is the admission-cache debug endpoint: per-group
// min-slack summaries straight from the cache the hot path reads. The
// read lock excludes log appends, so a first call may warm the cache
// from a consistent log view.
func (s corpusAPI) handleHeadroom(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	sums, err := s.dist.HeadroomSummaries(r.Context())
	pending := s.dist.HeadroomPending()
	s.mu.RUnlock()
	if err != nil {
		writeError(r.Context(), w, err)
		return
	}
	writeJSON(w, http.StatusOK, headroomResponse{Pending: pending, Groups: sums})
}

// handleSnapshot checkpoints a WAL-backed log on demand: fsync, compact
// the history into per-set counts, install atomically, retire covered
// segments in the background. JSONL logs answer 409 — they have no
// snapshot concept.
func (s corpusAPI) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		clientError(r.Context(), w, http.StatusConflict,
			"issuance log backend has no snapshots (run with -log-backend wal)")
		return
	}
	info, err := s.wal.SnapshotContext(r.Context())
	if err != nil {
		writeError(r.Context(), w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

type auditResponse struct {
	OK         bool     `json:"ok"`
	Groups     int      `json:"groups"`
	Equations  int64    `json:"equations"`
	Gain       float64  `json:"gain"`
	Violations []string `json:"violations,omitempty"`
	// Complete is false when the request deadline cut the audit short;
	// GroupsComplete counts the groups whose equations were all checked.
	Complete       bool   `json:"complete"`
	GroupsComplete int    `json:"groups_complete"`
	Error          string `json:"error,omitempty"`
	Kind           string `json:"kind,omitempty"`
	TraceID        string `json:"trace_id,omitempty"`
}

func (s corpusAPI) handleAudit(w http.ResponseWriter, r *http.Request) {
	// Auditing builds its own tree from corpus + log and mutates neither,
	// so concurrent audits (and other reads) proceed in parallel.
	s.mu.RLock()
	rep, aud, err := s.dist.AuditContext(r.Context(), s.workers)
	s.mu.RUnlock()
	if err != nil && !errors.Is(err, drmerr.ErrAuditIncomplete) {
		writeError(r.Context(), w, err)
		return
	}
	resp := auditResponse{
		OK:             rep.OK(),
		Groups:         aud.Grouping().NumGroups(),
		Equations:      rep.Equations,
		Gain:           aud.Gain(),
		Complete:       rep.Complete(),
		GroupsComplete: rep.GroupsComplete(),
	}
	for _, v := range rep.Violations {
		resp.Violations = append(resp.Violations, v.String())
	}
	status := http.StatusOK
	if err != nil {
		// Deadline-cut audit: the verified-so-far report rides along with
		// the 504 so callers still see every violation found (all real —
		// completed groups' verdicts are independent of the cut-off ones).
		status = drmerr.HTTPStatus(err)
		resp.Error = err.Error()
		resp.Kind = drmerr.KindOf(err).String()
		resp.TraceID = trace.IDFromContext(r.Context())
	}
	writeJSON(w, status, resp)
}
