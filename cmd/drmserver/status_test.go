package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/slo"
	"repro/internal/trace"
)

// lowerLatencyThreshold drops the latency SLO threshold to 1ns for the
// servers built inside the test, so every request counts as slow: its
// trace is force-retained and its exemplar passes the /v1/status filter.
func lowerLatencyThreshold(t *testing.T) {
	t.Helper()
	old := sloObjectives
	sloObjectives.LatencyThreshold = time.Nanosecond
	t.Cleanup(func() { sloObjectives = old })
}

// TestStatusEndpoint pins the unified operator pane: after real traffic,
// every block of /v1/status is populated, and — the acceptance
// criterion — each exemplar's trace URL resolves to a live entry in
// /debug/traces.
func TestStatusEndpoint(t *testing.T) {
	lowerLatencyThreshold(t)
	installTestTracer(t)
	ts, ex := newTestServer(t, engine.ModeOnline)

	req := issueRequest{Values: usageValues(ex), Count: 10}
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
			t.Fatalf("issue status = %d", code)
		}
	}

	var st statusResponse
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.Service.Name != "drmserver" || st.Service.Mode != "online" {
		t.Errorf("service = %+v", st.Service)
	}
	if st.Service.Licenses != 5 || st.Service.Groups != 2 || st.Service.LogRecords != 3 {
		t.Errorf("service corpus shape = %+v, want 5 licenses, 2 groups, 3 log records", st.Service)
	}
	if st.Service.UptimeSeconds <= 0 || st.Service.Draining {
		t.Errorf("service uptime/drain = %+v", st.Service)
	}

	if len(st.SLO.Objectives) != 2 {
		t.Fatalf("objectives = %d, want availability + latency", len(st.SLO.Objectives))
	}
	var issueScope *slo.ScopeWindow
	for i := range st.SLO.Endpoints {
		if st.SLO.Endpoints[i].Name == "POST /v1/issue" {
			issueScope = &st.SLO.Endpoints[i]
		}
	}
	if issueScope == nil || issueScope.Requests != 3 {
		t.Errorf("issue endpoint window = %+v", issueScope)
	}
	if len(st.SLO.Entries) != 1 || st.SLO.Entries[0].Name != "corpus" || st.SLO.Entries[0].Requests != 3 {
		t.Errorf("entry windows = %+v, want corpus ×3", st.SLO.Entries)
	}

	if len(st.HeavyHitters.Entries.ByRequests) == 0 {
		t.Error("heavy hitters empty after issuance traffic")
	} else if got := st.HeavyHitters.Entries.ByRequests[0].Weight; got != 3 {
		t.Errorf("top entry weight = %d, want 3", got)
	}
	if len(st.HeavyHitters.Groups.ByRequests) == 0 {
		t.Error("group heavy hitters empty after issuance traffic")
	}

	if st.Runtime.Goroutines < 1 || st.Runtime.HeapAllocBytes <= 0 {
		t.Errorf("runtime sample = %+v", st.Runtime)
	}
	if !st.Traces.Enabled || st.Traces.Retained == 0 {
		t.Errorf("trace ring = %+v, want enabled with retained traces", st.Traces)
	}

	// Exemplars: present (threshold 1ns marks everything slow), and every
	// trace link must dereference.
	if len(st.Exemplars) == 0 {
		t.Fatal("no exemplars in /v1/status after traced traffic")
	}
	scopes := map[string]bool{}
	for _, e := range st.Exemplars {
		scopes[e.Metric] = true
		if e.TraceID == "" || e.TraceURL != "/debug/traces/"+e.TraceID {
			t.Fatalf("malformed exemplar %+v", e)
		}
		resp, err := http.Get(ts.URL + e.TraceURL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exemplar trace %s does not resolve: status %d", e.TraceURL, resp.StatusCode)
		}
	}
	if !scopes["drm_http_request_seconds"] || !scopes["drm_engine_issue_seconds"] {
		t.Errorf("exemplar metrics = %v, want both HTTP and engine histograms", scopes)
	}
}

// TestStatusExemplarsOmitDroppedTraces pins the no-dangling-link
// contract under a realistic sampling policy (slow-only, nothing
// retained by default): untracked endpoints like /v1/readyz stamp
// exemplars but their traces are policy-dropped, so /v1/status must
// omit them — while SLO-wrapped endpoints stay force-retained and
// listed.
func TestStatusExemplarsOmitDroppedTraces(t *testing.T) {
	lowerLatencyThreshold(t)
	oldTracer := tracer
	tracer = trace.New(trace.Options{Capacity: 256, Policy: trace.Policy{Slow: time.Hour}})
	t.Cleanup(func() { tracer = oldTracer })
	ts, ex := newTestServer(t, engine.ModeOnline)

	// An untracked endpoint: exemplar recorded, trace dropped.
	if code := getJSON(t, ts.URL+"/v1/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz status = %d", code)
	}
	// An SLO-wrapped endpoint: over the (1ns) threshold, force-retained.
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 10}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}

	var st statusResponse
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var sawIssue bool
	for _, e := range st.Exemplars {
		if e.Scope == "GET /v1/readyz" {
			t.Errorf("dangling exemplar listed for untracked endpoint: %+v", e)
		}
		if e.Scope == "POST /v1/issue" {
			sawIssue = true
		}
		resp, err := http.Get(ts.URL + e.TraceURL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exemplar trace %s does not resolve: status %d", e.TraceURL, resp.StatusCode)
		}
	}
	if !sawIssue {
		t.Error("force-retained issue exemplar missing from /v1/status")
	}
}

// TestStatusTextFormat checks the human-readable rendering of the same
// pane.
func TestStatusTextFormat(t *testing.T) {
	lowerLatencyThreshold(t)
	installTestTracer(t)
	ts, ex := newTestServer(t, engine.ModeOnline)
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 10}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/status?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"drmserver — mode online",
		"SLO objectives",
		"availability",
		"latency",
		"Heavy hitters",
		"Runtime:",
		"Traces: enabled true",
		"/debug/traces/",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text pane missing %q:\n%s", want, body)
		}
	}
}

// TestSLOEndpointSchema pins the machine-readable SLO surface: both
// objectives, the four burn horizons, both alert rules, and the windowed
// endpoint summaries.
func TestSLOEndpointSchema(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	if code := postJSON(t, ts.URL+"/v1/issue",
		issueRequest{Values: usageValues(ex), Count: 10}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	var st slo.Status
	if code := getJSON(t, ts.URL+"/v1/slo", &st); code != http.StatusOK {
		t.Fatalf("slo status = %d", code)
	}
	names := map[string]bool{}
	for _, o := range st.Objectives {
		names[o.Name] = true
		windows := map[string]bool{}
		for _, w := range o.Windows {
			windows[w.Window] = true
			if w.BurnRate < 0 {
				t.Errorf("%s %s burn rate = %v", o.Name, w.Window, w.BurnRate)
			}
		}
		for _, h := range []string{"5m", "30m", "1h", "6h"} {
			if !windows[h] {
				t.Errorf("%s missing burn window %s (have %v)", o.Name, h, windows)
			}
		}
		sev := map[string]bool{}
		for _, a := range o.Alerts {
			sev[a.Severity] = true
			if a.Firing {
				t.Errorf("%s alert %s firing on a healthy server", o.Name, a.Severity)
			}
		}
		if !sev["page"] || !sev["ticket"] {
			t.Errorf("%s alerts = %v, want page + ticket", o.Name, sev)
		}
		if o.BudgetRemaining > 1 || o.BudgetRemaining < 0 {
			t.Errorf("%s budget remaining = %v on a healthy server", o.Name, o.BudgetRemaining)
		}
	}
	if !names["availability"] || !names["latency"] {
		t.Fatalf("objective names = %v", names)
	}
	if len(st.Endpoints) == 0 {
		t.Error("no endpoint windows in /v1/slo")
	}
}

// TestCatalogUnknownEntryError pins the typed 404 body on the per-entry
// observability routes.
func TestCatalogUnknownEntryError(t *testing.T) {
	ts, _ := newCatalogTestServer(t)
	for _, path := range []string{
		"/v1/c/NOPE/play/headroom",
		"/v1/c/K/copy/audit",
	} {
		var e errorBody
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, code)
		}
		if e.Kind != "not_found" || e.Error == "" {
			t.Errorf("GET %s body = %+v, want kind not_found", path, e)
		}
	}
}

// TestDrainGuard503: once graceful shutdown begins, pollable operator
// endpoints answer a typed 503 — but /v1/status keeps serving so the
// drain itself can be watched.
func TestDrainGuard503(t *testing.T) {
	ex := license.NewExample1()
	store, err := logstore.OpenFile(filepath.Join(t.TempDir(), "issued.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := newServer(ex.Corpus, store, engine.ModeOnline, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	// Before drain both answer 200.
	if code := getJSON(t, ts.URL+"/v1/slo", nil); code != http.StatusOK {
		t.Fatalf("pre-drain /v1/slo = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/headroom", nil); code != http.StatusOK {
		t.Fatalf("pre-drain /v1/headroom = %d", code)
	}

	srv.obs.draining.Store(true)
	for _, path := range []string{"/v1/slo", "/v1/headroom"} {
		var e errorBody
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusServiceUnavailable {
			t.Errorf("drained GET %s status = %d, want 503", path, code)
		}
		if e.Kind != "unavailable" {
			t.Errorf("drained GET %s kind = %q, want unavailable", path, e.Kind)
		}
	}
	var st statusResponse
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("drained /v1/status = %d, want 200", code)
	}
	if !st.Service.Draining {
		t.Error("status pane does not report draining")
	}
}

// TestConcurrentScrapeHammer drives issuance while hammering every
// telemetry surface — Prometheus and OpenMetrics expositions, the status
// pane, and /v1/slo — so the race detector vets the sliding windows,
// burn rings, exemplar pointers, and top-K sketches end to end.
func TestConcurrentScrapeHammer(t *testing.T) {
	lowerLatencyThreshold(t)
	installTestTracer(t)
	ts, ex := newTestServer(t, engine.ModeOffline)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := issueRequest{Values: usageValues(ex), Count: 1}
			for j := 0; j < 10; j++ {
				if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
					t.Errorf("issue status = %d", code)
					return
				}
			}
		}()
	}
	for _, path := range []string{
		"/metrics",
		"/metrics?format=openmetrics",
		"/v1/status",
		"/v1/status?format=text",
		"/v1/slo",
	} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
				}
			}(path)
		}
	}
	wg.Wait()

	// The scrape after the dust settles must still parse and agree with
	// the request count.
	series := scrape(t, ts.URL+"/metrics")
	if got := series[`drm_http_requests_total{endpoint="POST /v1/issue",class="2xx"}`]; got != 30 {
		t.Errorf("issue count after hammer = %v, want 30", got)
	}
	if got := series[`drm_slo_window_requests{scope="endpoint",name="POST /v1/issue"}`]; got != 30 {
		t.Errorf("slo window count after hammer = %v, want 30", got)
	}
}
