package main

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/license"
)

// TestLifecycleFlow walks the full ledger over HTTP: issue → transfer →
// revoke → over-revoke (409 ledger_unsound) → audit still clean, with
// /v1/stats tracking every operation.
func TestLifecycleFlow(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	vals := usageValues(ex)
	if code := postJSON(t, ts.URL+"/v1/issue", issueRequest{Values: vals, Count: 800}, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	var lr lifecycleResponse
	if code := postJSON(t, ts.URL+"/v1/transfer", lifecycleRequest{Values: vals, Count: 300}, &lr); code != http.StatusOK {
		t.Fatalf("transfer status = %d", code)
	}
	if lr.Op != "transfer" || lr.Count != 300 || len(lr.BelongsTo) != 2 {
		t.Fatalf("transfer response = %+v", lr)
	}
	if code := postJSON(t, ts.URL+"/v1/revoke", lifecycleRequest{Values: vals, Count: 500}, &lr); code != http.StatusOK {
		t.Fatalf("revoke status = %d", code)
	}
	// Net outstanding is 300 now; revoking 400 is refused as unsound.
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/revoke", lifecycleRequest{Values: vals, Count: 400}, &e); code != http.StatusConflict {
		t.Fatalf("over-revoke status = %d, want 409", code)
	}
	if e.Kind != "ledger_unsound" {
		t.Fatalf("over-revoke kind = %q, want ledger_unsound", e.Kind)
	}
	var audit auditResponse
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK || !audit.OK {
		t.Fatalf("audit = %+v (status %d)", audit, code)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Issued != 1 || st.Revoked != 1 || st.RevokedCounts != 500 ||
		st.Transferred != 1 || st.TransferredCounts != 300 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExpireEndpoint issues a TTL-carrying license, sweeps past its
// expiry via POST /v1/expire with an explicit now, and checks the
// debits land in the stats.
func TestExpireEndpoint(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	base := time.Now().Unix()
	req := issueRequest{Values: usageValues(ex), Count: 120, Expiry: base + 30}
	if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
		t.Fatalf("ttl issue status = %d", code)
	}
	// A sweep before the expiry finds nothing.
	var res engine.SweepResult
	if code := postJSON(t, ts.URL+"/v1/expire", expireRequest{Now: base + 10}, &res); code != http.StatusOK {
		t.Fatalf("early sweep status = %d", code)
	}
	if res.Records != 0 {
		t.Fatalf("early sweep = %+v, want empty", res)
	}
	if code := postJSON(t, ts.URL+"/v1/expire", expireRequest{Now: base + 30}, &res); code != http.StatusOK {
		t.Fatalf("sweep status = %d", code)
	}
	if res.Records != 1 || res.Counts != 120 {
		t.Fatalf("sweep = %+v, want 1 record of 120", res)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Expired != 1 || st.ExpiredCounts != 120 {
		t.Fatalf("stats = %+v, want 1 expiry of 120", st)
	}
}

// TestLifecycleInstanceRejection maps a rectangle outside every license
// to 422 for both lifecycle verbs.
func TestLifecycleInstanceRejection(t *testing.T) {
	ts, _ := newTestServer(t, engine.ModeOnline)
	lo, hi := int64(0), int64(1)
	req := lifecycleRequest{
		Values: []license.ValueDoc{{Lo: &lo, Hi: &hi}, {Set: []int{0}}},
		Count:  10,
	}
	for _, ep := range []string{"/v1/revoke", "/v1/transfer"} {
		var e errorBody
		if code := postJSON(t, ts.URL+ep, req, &e); code != http.StatusUnprocessableEntity {
			t.Fatalf("%s status = %d, want 422", ep, code)
		}
		if e.Kind != "instance_invalid" {
			t.Fatalf("%s kind = %q, want instance_invalid", ep, e.Kind)
		}
	}
}
