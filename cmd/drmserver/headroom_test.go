package main

import (
	"net/http"
	"testing"

	"repro/internal/engine"
	"repro/internal/license"
)

// TestHeadroomEndpoint checks the admission-cache debug view: after two
// online issuances the per-group summaries expose the dense-mode slack
// state, and the drm_headroom_* families move on /metrics.
func TestHeadroomEndpoint(t *testing.T) {
	ts, ex := newTestServer(t, engine.ModeOnline)
	u2 := ex.Usage2.Rect
	iv := u2.Value(0).Interval()
	lo, hi := iv.Lo, iv.Hi
	for _, req := range []issueRequest{
		{Values: usageValues(ex), Count: 800},
		{Values: []license.ValueDoc{{Lo: &lo, Hi: &hi}, {Set: u2.Value(1).Set().Elems()}}, Count: 400},
	} {
		if code := postJSON(t, ts.URL+"/v1/issue", req, nil); code != http.StatusOK {
			t.Fatalf("issue status = %d", code)
		}
	}
	var body headroomResponse
	if code := getJSON(t, ts.URL+"/v1/headroom", &body); code != http.StatusOK {
		t.Fatalf("headroom status = %d", code)
	}
	if body.Pending != 0 {
		t.Errorf("pending = %d, want 0 at rest", body.Pending)
	}
	if len(body.Groups) == 0 {
		t.Fatal("no group summaries")
	}
	observed, bounded := 0, 0
	for _, g := range body.Groups {
		if g.Mode != "dense" {
			t.Errorf("group %d mode = %q, want dense for Example 1", g.Group, g.Mode)
		}
		observed += g.ObservedSets
		if !g.Unbounded {
			bounded++
			if g.MinSlack < 0 {
				t.Errorf("group %d min slack %d < 0 in an online-guarded log", g.Group, g.MinSlack)
			}
		}
	}
	if observed == 0 || bounded == 0 {
		t.Fatalf("summaries show no issuance state: %+v", body.Groups)
	}

	// A clean audit runs the cache verifier; then the metric families the
	// cache owns must all be live on /metrics.
	if code := getJSON(t, ts.URL+"/v1/audit", nil); code != http.StatusOK {
		t.Fatalf("audit status = %d", code)
	}
	series := scrape(t, ts.URL+"/metrics")
	if got := series[`drm_headroom_checks_total`]; got != 2 {
		t.Errorf("headroom checks = %v, want 2", got)
	}
	if got := series[`drm_headroom_admitted_total`]; got != 2 {
		t.Errorf("headroom admitted = %v, want 2", got)
	}
	if got := series[`drm_headroom_verify_total`]; got != 1 {
		t.Errorf("headroom verifies = %v, want 1 after one clean audit", got)
	}
	if got := series[`drm_headroom_divergence_total`]; got != 0 {
		t.Errorf("headroom divergence = %v, want 0", got)
	}
	if got := series[`drm_headroom_groups`]; got <= 0 {
		t.Errorf("headroom groups gauge = %v, want > 0", got)
	}
}

// TestCatalogHeadroomRoute serves the same view per catalog entry.
func TestCatalogHeadroomRoute(t *testing.T) {
	ts, ex := newCatalogTestServer(t)
	req := issueRequest{Values: usageValues(ex), Count: 10}
	if code := postJSON(t, ts.URL+"/v1/c/K/play/issue", req, nil); code != http.StatusOK {
		t.Fatalf("issue status = %d", code)
	}
	var body headroomResponse
	if code := getJSON(t, ts.URL+"/v1/c/K/play/headroom", &body); code != http.StatusOK {
		t.Fatalf("headroom status = %d", code)
	}
	if len(body.Groups) == 0 {
		t.Fatal("no group summaries for catalog entry")
	}
	if code := getJSON(t, ts.URL+"/v1/c/missing/play/headroom", nil); code != http.StatusNotFound {
		t.Fatalf("unknown entry status = %d, want 404", code)
	}
}
