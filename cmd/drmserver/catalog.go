package main

import (
	"errors"
	"net/http"
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/drmerr"
	"repro/internal/license"
)

// catalogServer is the multi-content mode: every catalog entry is served
// at /v1/c/{content}/{perm}/..., plus a listing endpoint. One RWMutex
// covers the whole catalog (entries share log files only per entry, but
// the simplicity is worth more than per-entry locking at this scale);
// read-only endpoints across different entries proceed concurrently.
type catalogServer struct {
	mu      sync.RWMutex
	cat     *catalog.Catalog
	workers int
	obs     *serverObs
}

func newCatalogServer(cat *catalog.Catalog, workers int) *catalogServer {
	s := &catalogServer{cat: cat, workers: workers}
	s.obs = newServerObs(func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.cat.Len() == 0 {
			return errors.New("catalog empty")
		}
		return nil
	})
	s.obs.info = func() serviceStatus {
		s.mu.RLock()
		defer s.mu.RUnlock()
		st := serviceStatus{Name: "drmserver", Mode: s.cat.Mode().String(), Entries: s.cat.Len()}
		for _, e := range s.cat.Entries() {
			st.Licenses += e.Corpus.Len()
			st.Groups += e.Dist.NumGroups()
			st.LogRecords += e.Log.Len()
		}
		return st
	}
	s.obs.walBacklog = func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var total int64
		for _, e := range s.cat.Entries() {
			if w := e.WAL(); w != nil {
				total += w.Backlog()
			}
		}
		return total
	}
	return s
}

func (s *catalogServer) routes() http.Handler {
	mux := http.NewServeMux()
	s.obs.mountCommon(mux)
	s.obs.wrap(mux, "GET /v1/contents", s.handleContents)
	s.obs.wrap(mux, "GET /v1/c/{content}/{perm}/corpus", s.entry(corpusAPI.handleCorpus))
	s.obs.wrap(mux, "GET /v1/c/{content}/{perm}/groups", s.entry(corpusAPI.handleGroups))
	s.obs.wrap(mux, "POST /v1/c/{content}/{perm}/issue", s.entry(corpusAPI.handleIssue))
	s.obs.wrap(mux, "POST /v1/c/{content}/{perm}/revoke", s.entry(corpusAPI.handleRevoke))
	s.obs.wrap(mux, "POST /v1/c/{content}/{perm}/transfer", s.entry(corpusAPI.handleTransfer))
	s.obs.wrap(mux, "POST /v1/c/{content}/{perm}/expire", s.entry(corpusAPI.handleExpire))
	s.obs.wrap(mux, "GET /v1/c/{content}/{perm}/audit", s.entry(corpusAPI.handleAudit))
	s.obs.wrap(mux, "GET /v1/c/{content}/{perm}/stats", s.entry(corpusAPI.handleStats))
	s.obs.wrap(mux, "GET /v1/c/{content}/{perm}/headroom", s.obs.drainGuard(s.entry(corpusAPI.handleHeadroom)))
	s.obs.wrap(mux, "POST /v1/c/{content}/{perm}/snapshot", s.entry(corpusAPI.handleSnapshot))
	s.obs.wrap(mux, "POST /v1/snapshot", s.handleSnapshotAll)
	return mux
}

// snapshotAllEntry is one entry's outcome in a catalog-wide snapshot.
type snapshotAllEntry struct {
	Content    string `json:"content"`
	Permission string `json:"permission"`
	Records    int    `json:"records"`
	Seq        uint64 `json:"seq"`
}

// handleSnapshotAll checkpoints every WAL-backed entry. JSONL entries are
// skipped (an all-JSONL catalog answers with an empty list).
func (s *catalogServer) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos, err := s.cat.SnapshotAll()
	s.mu.RUnlock()
	if err != nil {
		writeError(r.Context(), w, err)
		return
	}
	out := struct {
		Entries []snapshotAllEntry `json:"entries"`
	}{Entries: []snapshotAllEntry{}}
	for e, info := range infos {
		out.Entries = append(out.Entries, snapshotAllEntry{
			Content:    e.Content,
			Permission: string(e.Permission),
			Records:    info.Records,
			Seq:        info.Seq,
		})
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].Content != out.Entries[j].Content {
			return out.Entries[i].Content < out.Entries[j].Content
		}
		return out.Entries[i].Permission < out.Entries[j].Permission
	})
	writeJSON(w, http.StatusOK, out)
}

// entry resolves the path's (content, perm) to a corpusAPI and
// dispatches, feeding the entry's sliding SLO window; unknown pairs get
// a typed 404 {error, kind} body and touch no entry window.
func (s *catalogServer) entry(h func(corpusAPI, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		content := r.PathValue("content")
		perm := license.Permission(r.PathValue("perm"))
		s.mu.RLock()
		e := s.cat.Get(content, perm)
		s.mu.RUnlock()
		if e == nil {
			writeError(r.Context(), w, drmerr.New(drmerr.KindNotFound, "drmserver",
				"no corpus for (%s, %s)", content, perm))
			return
		}
		api := corpusAPI{mu: &s.mu, corpus: e.Corpus, dist: e.Dist, workers: s.workers, wal: e.WAL()}
		t := s.obs.slo.Entry(content + "/" + string(perm))
		entryObserved(t, func(w http.ResponseWriter, r *http.Request) { h(api, w, r) })(w, r)
	}
}

type contentsBody struct {
	Contents []contentEntry `json:"contents"`
}

type contentEntry struct {
	Content    string `json:"content"`
	Permission string `json:"permission"`
	Licenses   int    `json:"licenses"`
	Groups     int    `json:"groups"`
	LogRecords int    `json:"log_records"`
}

func (s *catalogServer) handleContents(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	var body contentsBody
	for _, e := range s.cat.Entries() {
		body.Contents = append(body.Contents, contentEntry{
			Content:    e.Content,
			Permission: string(e.Permission),
			Licenses:   e.Corpus.Len(),
			Groups:     e.Dist.NumGroups(),
			LogRecords: e.Log.Len(),
		})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, body)
}
