// Lifecycle endpoints: the typed ledger's revoke / transfer / expire
// operations over HTTP, plus the background expiry sweeper. Handlers
// mirror handleIssue — resolve the rectangle, take the corpus write
// lock, run the engine operation (WAL-durable, cache-mirrored), map
// taxonomy errors to their HTTP statuses (409 ledger_unsound for a
// debit the store refused, 422 instance-invalid, ...).

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/license"
)

// lifecycleRequest is the shared revoke/transfer body: the rectangle
// identifying the belongs-to set, and how many permission counts to move.
type lifecycleRequest struct {
	Values []license.ValueDoc `json:"values"`
	Count  int64              `json:"count"`
}

// lifecycleResponse echoes the operation, the resolved belongs-to set
// (one-based license numbers), and the count moved.
type lifecycleResponse struct {
	Op        string `json:"op"`
	BelongsTo []int  `json:"belongs_to"`
	Count     int64  `json:"count"`
}

// decodeLifecycle reads and validates the shared revoke/transfer body,
// returning the resolved rectangle. A false return means the error has
// been written.
func (s corpusAPI) decodeLifecycle(w http.ResponseWriter, r *http.Request) (lifecycleRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIssueBody)
	var req lifecycleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			clientError(r.Context(), w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return req, false
		}
		clientError(r.Context(), w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return req, false
	}
	return req, true
}

// writeLifecycle answers a decided lifecycle operation the same way
// handleIssue does: taxonomy errors carry their own status (409
// violation / ledger_unsound, 422 instance-invalid, 400 invalid input,
// 499 cancelled), anything else is a 400.
func writeLifecycle(ctx context.Context, w http.ResponseWriter, op string, set bitset.Mask, count int64, err error) {
	switch {
	case err == nil:
		var belongs []int
		set.ForEach(func(j int) bool { belongs = append(belongs, j+1); return true })
		writeJSON(w, http.StatusOK, lifecycleResponse{Op: op, BelongsTo: belongs, Count: count})
	case drmerr.KindOf(err) != drmerr.KindUnknown:
		writeError(ctx, w, err)
	default:
		clientError(ctx, w, http.StatusBadRequest, err.Error())
	}
}

// handleRevoke takes counts back out of circulation. The store refuses
// (409 ledger_unsound) a revoke exceeding the set's net outstanding
// count; an accepted revoke frees headroom immediately in online mode.
func (s corpusAPI) handleRevoke(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeLifecycle(w, r)
	if !ok {
		return
	}
	rect, err := license.BuildRect(s.corpus.Schema(), req.Values)
	if err != nil {
		clientError(r.Context(), w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	set, err := s.dist.RevokeContext(r.Context(), rect, req.Count)
	s.mu.Unlock()
	writeLifecycle(r.Context(), w, "revoke", set, req.Count, err)
}

// handleTransfer re-homes counts without changing the aggregate picture.
// Online mode enforces the outstanding bound and the cumulative
// transfer cap (-transfer-cap), both answering 409.
func (s corpusAPI) handleTransfer(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeLifecycle(w, r)
	if !ok {
		return
	}
	rect, err := license.BuildRect(s.corpus.Schema(), req.Values)
	if err != nil {
		clientError(r.Context(), w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	set, err := s.dist.TransferContext(r.Context(), rect, req.Count)
	s.mu.Unlock()
	writeLifecycle(r.Context(), w, "transfer", set, req.Count, err)
}

// expireRequest optionally overrides the sweep's notion of now (Unix
// seconds) — deterministic expiry for tests and operators replaying a
// schedule. Empty bodies mean "now".
type expireRequest struct {
	Now int64 `json:"now"`
}

// handleExpire runs one expiry sweep on demand: every TTL bucket due at
// or before now is debited with an expire record. The background
// sweeper (-expire-every) runs the same body on a ticker.
func (s corpusAPI) handleExpire(w http.ResponseWriter, r *http.Request) {
	var req expireRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIssueBody)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		clientError(r.Context(), w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	now := time.Now()
	if req.Now > 0 {
		now = time.Unix(req.Now, 0)
	}
	s.mu.Lock()
	res, err := s.dist.ExpireSweep(r.Context(), now)
	s.mu.Unlock()
	if err != nil {
		writeError(r.Context(), w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// startSweeper runs sweep on a ticker until the returned stop function
// is called; stop blocks until an in-flight sweep finishes, so deferred
// log closes never race an appending sweep.
func startSweeper(interval time.Duration, sweep func(context.Context)) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				sweep(ctx)
			}
		}
	}()
	return func() { cancel(); <-done }
}

// sweepExpired is the single-corpus sweeper tick.
func (s *server) sweepExpired(ctx context.Context) {
	s.api.mu.Lock()
	res, err := s.api.dist.ExpireSweep(ctx, time.Now())
	s.api.mu.Unlock()
	if err != nil && !drmerr.IsCancellation(err) {
		logger.Error("expiry sweep failed", "err", err)
		return
	}
	if res.Records > 0 {
		logger.Info("expiry sweep", "records", res.Records, "counts", res.Counts)
	}
}

// sweepExpired is the catalog-mode sweeper tick: one sweep per entry.
func (s *catalogServer) sweepExpired(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.cat.Entries() {
		res, err := e.Dist.ExpireSweep(ctx, time.Now())
		if err != nil {
			if !drmerr.IsCancellation(err) {
				logger.Error("expiry sweep failed", "content", e.Content,
					"permission", string(e.Permission), "err", err)
			}
			return
		}
		if res.Records > 0 {
			logger.Info("expiry sweep", "content", e.Content,
				"permission", string(e.Permission), "records", res.Records, "counts", res.Counts)
		}
	}
}
