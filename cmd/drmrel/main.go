// Command drmrel converts license corpora between the JSON document format
// (cmd/drmgen's output) and the paper's rights-expression notation
// ("(K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)").
//
// Usage:
//
//	drmrel -to rel  -in corpus.json -out corpus.rel
//	drmrel -to json -in corpus.rel  -out corpus.json
//
// The .rel side uses the paper dialect: a "period" interval axis tagged T
// (rendered as dd/mm/yy dates) and a "region" set axis tagged R resolved
// against the built-in world taxonomy. JSON corpora with other schemas
// can be rendered to .rel with generated tags, but only the paper schema
// round-trips regions by name.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/license"
	"repro/internal/region"
	"repro/internal/rel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drmrel:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drmrel", flag.ContinueOnError)
	var (
		to      = fs.String("to", "rel", "target format: rel or json")
		inPath  = fs.String("in", "", "input corpus path")
		outPath = fs.String("out", "", "output path (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	in, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer in.Close()

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	switch *to {
	case "rel":
		corpus, err := license.DecodeCorpus(in)
		if err != nil {
			return err
		}
		dialect, err := rel.GenericDialect(corpus.Schema(), region.World())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# converted from %s\n", *inPath)
		for _, l := range corpus.Licenses() {
			fmt.Fprintf(out, "%s: %s\n", l.Name, dialect.FormatLicense(l))
		}
		return nil
	case "json":
		dialect, _, err := rel.PaperDialect(region.World())
		if err != nil {
			return err
		}
		corpus, err := dialect.ParseCorpus(in)
		if err != nil {
			return err
		}
		return license.EncodeCorpus(out, corpus)
	default:
		return fmt.Errorf("unknown target format %q (want rel or json)", *to)
	}
}
