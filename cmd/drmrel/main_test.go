package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/license"
)

const ex1rel = `# Example 1
L_D^1: (K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)
L_D^2: (K; Play; T=[15/03/09, 25/03/09], R=[Asia]; A=1000)
L_D^3: (K; Play; T=[15/03/09, 30/03/09], R=[America]; A=3000)
L_D^4: (K; Play; T=[15/03/09, 15/04/09], R=[Europe]; A=4000)
L_D^5: (K; Play; T=[25/03/09, 10/04/09], R=[America]; A=2000)
`

func TestRelToJSONToRelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	relPath := filepath.Join(dir, "ex1.rel")
	jsonPath := filepath.Join(dir, "ex1.json")
	if err := os.WriteFile(relPath, []byte(ex1rel), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-to", "json", "-in", relPath, "-out", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	// The JSON decodes to the fixture's corpus.
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := license.DecodeCorpus(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := license.NewExample1().Corpus
	if corpus.Len() != want.Len() {
		t.Fatalf("len = %d", corpus.Len())
	}
	for i := 0; i < corpus.Len(); i++ {
		if corpus.License(i).Rect.String() != want.License(i).Rect.String() {
			t.Errorf("license %d rect differs", i)
		}
	}
	// Back to .rel on stdout: licenses reappear in paper notation.
	out.Reset()
	if err := run([]string{"-to", "rel", "-in", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, wantLine := range []string{
		"L_D^1: (K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)",
		"L_D^5: (K; Play; T=[25/03/09, 10/04/09], R=[America]; A=2000)",
	} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("rel output missing %q:\n%s", wantLine, s)
		}
	}
}

func TestGenericSchemaRendersWithAxisTags(t *testing.T) {
	// A non-paper schema renders with generated tags (axis names).
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "generic.json")
	doc := `{"version":1,"content":"K","permission":"play",
	 "axes":[{"name":"c0","kind":"interval"},{"name":"c1","kind":"interval"}],
	 "licenses":[{"name":"L1","aggregate":10,"values":[{"lo":0,"hi":5},{"lo":2,"hi":9}]}]}`
	if err := os.WriteFile(jsonPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-to", "rel", "-in", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "C0=[0, 5], C1=[2, 9]") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &out); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	relPath := filepath.Join(dir, "x.rel")
	if err := os.WriteFile(relPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-to", "json", "-in", relPath}, &out); err == nil {
		t.Error("garbage .rel accepted")
	}
	if err := run([]string{"-to", "weird", "-in", relPath}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}
