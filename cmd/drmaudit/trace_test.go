package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestAuditTraceExport(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-trace", tracePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Errorf("report does not mention the trace file:\n%s", out.String())
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := trace.DecodeChrome(f)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("trace file has no duration events")
	}

	// The audit pipeline spans must all be present by name.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drmaudit.audit", "core.build", "core.divide", "core.validate", "vtree.shard", "logstore.replay"} {
		if !bytes.Contains(raw, []byte(`"`+want+`"`)) {
			t.Errorf("trace file missing span %q", want)
		}
	}
}

func TestAuditTraceExportOnDeadlineCut(t *testing.T) {
	// A deadline the auditor cannot meet still leaves a decodable trace
	// of whatever ran — the spent deadline fails construction itself
	// (run() errors), and the error trace is flushed on the way out.
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath,
		"-trace", tracePath, "-timeout", "1ns"}, &out)
	if err == nil && code != 3 {
		t.Fatalf("exit = %d err = nil, want an error or exit 3\n%s", code, out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := trace.DecodeChrome(f); err != nil {
		t.Fatalf("deadline-cut trace file invalid: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"drmaudit.audit"`)) {
		t.Error("deadline-cut trace missing the root span")
	}
}

func TestAuditLogLevelFlag(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-log-level", "banana"}, &out); err == nil {
		t.Error("bad -log-level accepted")
	}
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-log-level", "debug"}, &out); err != nil {
		t.Errorf("-log-level debug rejected: %v", err)
	}
}
