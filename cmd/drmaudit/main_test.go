package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/signature"
)

// writeExample1 persists the paper's corpus and a log (Table 2 plus an
// optional violating record) into dir, returning the two paths.
func writeExample1(t *testing.T, dir string, extra int64) (string, string) {
	t.Helper()
	ex := license.NewExample1()
	corpusPath := filepath.Join(dir, "corpus.json")
	cf, err := os.Create(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := license.EncodeCorpus(cf, ex.Corpus); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	var records []logstore.Record
	for _, e := range ex.Log {
		records = append(records, logstore.Record{Set: e.Set, Count: e.Count})
	}
	if extra > 0 {
		records = append(records, logstore.Record{Set: 0b00010, Count: extra}) // {L2}
	}
	logPath := filepath.Join(dir, "log.jsonl")
	lf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := logstore.WriteAll(lf, records); err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	return corpusPath, logPath
}

func TestAuditCleanLog(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-compare"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	s := out.String()
	for _, want := range []string{
		"groups:      2 [{1,2,4} {3,5}]",
		"gain (eq 3): 3.10x",
		"OK — no aggregate violations",
		"10 grouped (vs 31 undivided)",
		"compare:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAuditViolationsWithExplain(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 700) // C⟨{2}⟩ = 1100
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-explain"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	s := out.String()
	for _, want := range []string{"VIOLATED", "A[{2}] = 1000", "C[{2}] = 1100"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAuditWritesDOT(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	dot := filepath.Join(dir, "overlap.dot")
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-dot", dot}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph overlap {") {
		t.Errorf("dot file = %q", data)
	}
}

func TestAuditCompareSkipsLargeN(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath,
		"-compare", "-max-original", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("output = %q", out.String())
	}
}

func TestAuditErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing corpus accepted")
	}
	corpus, _ := writeExample1(t, t.TempDir(), 0)
	if _, err := run([]string{"-corpus", corpus, "-log", "/nonexistent.jsonl"}, &out); err == nil {
		t.Error("missing log accepted")
	}
	if _, err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestAuditCapacityReport(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-capacity"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"capacity:", "headroom", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAuditJSONOutput(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	var doc jsonReport
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Licenses != 5 || doc.Equations != 10 || !doc.OK {
		t.Errorf("doc = %+v", doc)
	}
	if len(doc.Groups) != 2 || doc.Gain < 3.09 || doc.Gain > 3.11 {
		t.Errorf("groups/gain = %v %v", doc.Groups, doc.Gain)
	}
	// Violating log: exit 2 and violations listed.
	corpus2, logPath2 := writeExample1(t, t.TempDir(), 700)
	out.Reset()
	code, err = run([]string{"-corpus", corpus2, "-log", logPath2, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OK || len(doc.Violations) == 0 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestAuditCompactsLog(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-compact"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "compacted:") {
		t.Errorf("output = %q", out.String())
	}
	// Table 2 has 6 records over 5 distinct sets.
	n := 0
	if err := logstore.ReadFile(logPath, func(logstore.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("compacted records = %d, want 5", n)
	}
	// Re-audit of the compacted log gives the same verdict.
	out.Reset()
	code, err := run([]string{"-corpus", corpus, "-log", logPath}, &out)
	if err != nil || code != 0 {
		t.Errorf("re-audit = %d, %v", code, err)
	}
}

func TestAuditSignedCorpus(t *testing.T) {
	dir := t.TempDir()
	ex := license.NewExample1()
	_, priv, err := signature.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	signedPath := filepath.Join(dir, "corpus.signed")
	sf, err := os.Create(signedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := signature.WriteSignedCorpus(sf, ex.Corpus, priv); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	_, logPath := writeExample1(t, dir, 0)

	var out bytes.Buffer
	code, err := run([]string{"-corpus", signedPath, "-log", logPath, "-signed"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out.String(), "issuer:      verified") {
		t.Errorf("code=%d output=%q", code, out.String())
	}
	// Pinned wrong issuer: rejected.
	otherPub, _, err := signature.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if _, err := run([]string{"-corpus", signedPath, "-log", logPath,
		"-signed", "-issuer", signature.KeyToString(otherPub)}, &out); err == nil {
		t.Error("foreign issuer pin accepted")
	}
	// Unsigned corpus with -signed flag: rejected.
	plainCorpus, _ := writeExample1(t, t.TempDir(), 0)
	if _, err := run([]string{"-corpus", plainCorpus, "-log", logPath, "-signed"}, &out); err == nil {
		t.Error("unsigned corpus accepted as signed")
	}
}

func TestAuditForecast(t *testing.T) {
	corpus, logPath := writeExample1(t, t.TempDir(), 0)
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-forecast", "period"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"forecast (expiry timeline):", "SPLIT", "equations"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-forecast", "nope"}, &out); err == nil {
		t.Error("unknown forecast axis accepted")
	}
}
