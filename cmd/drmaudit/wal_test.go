package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logstore"
	"repro/internal/wal"
)

func TestAuditMigrateThenAuditWAL(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	walDir := filepath.Join(dir, "issued.wal")

	// Audit the JSONL log and migrate it.
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-migrate-wal", walDir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "migrated:") {
		t.Errorf("output missing migration line:\n%s", out.String())
	}

	// Auditing the migrated WAL (backend auto-detected from the
	// directory) gives the same verdict and equation count.
	out.Reset()
	code, err = run([]string{"-corpus", corpus, "-log", walDir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("WAL audit exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{
		"groups:      2 [{1,2,4} {3,5}]",
		"10 grouped (vs 31 undivided)",
		"OK — no aggregate violations",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("WAL audit output missing %q:\n%s", want, out.String())
		}
	}

	// Re-running the migration into the now-populated target must refuse.
	out.Reset()
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-migrate-wal", walDir}, &out); err == nil {
		t.Error("migration into non-empty WAL accepted")
	}
}

func TestAuditMigratePreservesViolations(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 700) // over-issues {L2}
	walDir := filepath.Join(dir, "issued.wal")
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-migrate-wal", walDir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("JSONL audit exit code = %d, want 2\n%s", code, out.String())
	}
	out.Reset()
	code, err = run([]string{"-corpus", corpus, "-log", walDir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("WAL audit exit code = %d, want 2 (violation lost in migration)\n%s", code, out.String())
	}
}

func TestAuditRepairFlag(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{\"set\":3,\"cou")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Without -repair the torn tail is a typed failure.
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath}, &out); err == nil {
		t.Fatal("audit over torn log succeeded without -repair")
	}
	// With -repair the tail is truncated and the audit proceeds.
	out.Reset()
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-repair"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "repaired:") {
		t.Errorf("output missing repair line:\n%s", out.String())
	}
}

func TestAuditCompactWAL(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	walDir := filepath.Join(dir, "issued.wal")
	var out bytes.Buffer
	if _, err := run([]string{"-corpus", corpus, "-log", logPath, "-migrate-wal", walDir}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err := run([]string{"-corpus", corpus, "-log", walDir, "-compact"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "compacted:") {
		t.Errorf("output missing compaction line:\n%s", out.String())
	}
	// The compacted WAL still audits clean.
	ws, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	recs, err := logstore.Collect(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("compaction emptied the WAL")
	}
}
