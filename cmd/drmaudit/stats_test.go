package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestAuditStatsFile pins the acceptance criterion: on the paper's
// Example 1 a full audit's realized gain must equal the theoretical G of
// eq. 3 (31/10 = 3.1), and the -stats record must carry the equation
// economy behind it.
func TestAuditStatsFile(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	statsPath := filepath.Join(dir, "stats.json")
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-stats", statsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "stats:") {
		t.Errorf("output does not mention the stats file:\n%s", out.String())
	}

	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.AuditStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats file not valid JSON: %v", err)
	}
	if st.Licenses != 5 || st.Groups != 2 {
		t.Errorf("stats shape = %+v", st)
	}
	if st.EquationsChecked != 10 || st.EquationsFull != 31 {
		t.Errorf("equations = %d/%v, want 10/31", st.EquationsChecked, st.EquationsFull)
	}
	if st.GainRealized != st.GainTheoretical {
		t.Errorf("realized gain %v != theoretical %v on a full audit",
			st.GainRealized, st.GainTheoretical)
	}
	if st.GainTheoretical < 3.09 || st.GainTheoretical > 3.11 {
		t.Errorf("theoretical gain = %v, want 3.1", st.GainTheoretical)
	}
}

// TestAuditStatsWithJSONKeepsStdoutClean checks -stats composes with
// -json: stdout stays a single JSON document.
func TestAuditStatsWithJSONKeepsStdoutClean(t *testing.T) {
	dir := t.TempDir()
	corpus, logPath := writeExample1(t, dir, 0)
	statsPath := filepath.Join(dir, "stats.json")
	var out bytes.Buffer
	code, err := run([]string{"-corpus", corpus, "-log", logPath, "-json", "-stats", statsPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout not a single JSON document: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(statsPath); err != nil {
		t.Fatalf("stats file missing: %v", err)
	}
}
