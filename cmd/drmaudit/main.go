// Command drmaudit runs the geometric offline aggregate validation over a
// corpus document and an issuance log (the files cmd/drmgen writes, or any
// files in the same formats).
//
// Usage:
//
//	drmaudit -corpus corpus.json -log log.jsonl [-workers 4] [-compare]
//	drmaudit -corpus corpus.json -log issued.wal            # WAL directory
//	drmaudit -corpus corpus.json -log log.jsonl -repair      # fix a torn tail
//	drmaudit -corpus corpus.json -log log.jsonl -migrate-wal issued.wal
//	drmaudit -corpus corpus.json -log log.jsonl -trace out.json  # Perfetto trace
//
// The issuance log may be a JSONL file or a WAL directory (internal/wal);
// -log-backend auto (the default) tells them apart by whether -log is a
// directory. -repair truncates a torn JSONL tail (a WAL repairs its own
// tail during recovery). -migrate-wal converts the log into a fresh WAL
// store, snapshot included, after the audit passes over it.
//
// It prints the grouping, the theoretical gain, per-stage timings, and any
// violated validation equations. -workers (default: all CPUs) bounds the
// audit's parallelism with a two-level budget — across groups and across
// contiguous mask shards inside each group — so even a single dominant
// group uses every core; the report is identical at any setting. With
// -compare it also runs the original undivided validator and reports the
// measured speed-up (refusing when N exceeds -max-original). With
// -timeout the audit runs under a deadline; when it expires the
// verified-so-far report and per-group completeness are printed. The exit
// status is 2 when violations are found and 3 when the deadline cut the
// audit short.
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/forecast"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/signature"
	"repro/internal/trace"
	"repro/internal/vtree"
	"repro/internal/wal"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmaudit:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("drmaudit", flag.ContinueOnError)
	var (
		corpusPath = fs.String("corpus", "corpus.json", "corpus document path")
		logPath    = fs.String("log", "log.jsonl", "issuance log path")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0),
			"validation parallelism: groups × intra-group mask shards (default: all CPUs; 1 = the paper's serial algorithm)")
		compare     = fs.Bool("compare", false, "also run the undivided 2^N-1 equation validator")
		maxOriginal = fs.Int("max-original", 24, "largest N for which -compare is allowed")
		explain     = fs.Bool("explain", false, "decompose each violated equation into contributions and budgets")
		capacity    = fs.Bool("capacity", false, "print per-license headrooms and group utilization")
		forecastAx  = fs.String("forecast", "", "project the validation plan across expiries along this interval axis")
		dotPath     = fs.String("dot", "", "write the overlap graph (Graphviz DOT) to this path")
		jsonOut     = fs.Bool("json", false, "emit the audit as a JSON document instead of text")
		statsPath   = fs.String("stats", "", "write the typed AuditStats record (JSON) to this path")
		signed      = fs.Bool("signed", false, "treat -corpus as an Ed25519-signed document and verify it")
		issuerKey   = fs.String("issuer", "", "pinned issuer public key (base64; with -signed)")
		compactLog  = fs.Bool("compact", false, "compact the log in place after reading it (JSONL rewrite, or WAL snapshot + segment retirement)")
		logBackend  = fs.String("log-backend", "auto",
			"issuance log backend: auto (directory = wal, file = jsonl), jsonl, or wal")
		repairLog = fs.Bool("repair", false,
			"truncate a torn JSONL tail before reading (WAL recovery repairs its own tail)")
		migrateWAL = fs.String("migrate-wal", "",
			"after the audit, migrate the log records into a fresh WAL store at this directory and snapshot it")
		timeout = fs.Duration("timeout", 0,
			"audit deadline (0 = none); an expired deadline prints the verified-so-far report, per-group completeness, and exits 3")
		tracePath = fs.String("trace", "",
			"trace the audit and write it as Chrome Trace Event JSON (Perfetto-loadable) to this path")
		logLevel  = fs.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "diagnostic log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	// Diagnostics go to stderr (stdout is the report); -log-level debug
	// narrates the load/audit stages, and every record carries the
	// audit's trace_id when -trace is on.
	lh, err := obs.NewLogHandler(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		return 0, err
	}
	slogger := slog.New(trace.LogHandler(lh))

	var tracer *trace.Tracer
	if *tracePath != "" {
		// The zero policy is "slow=0": the one audit trace is always
		// retained, partial or not.
		tracer = trace.New(trace.Options{Capacity: 4})
	}

	cf, err := os.Open(*corpusPath)
	if err != nil {
		return 0, err
	}
	var corpus *license.Corpus
	if *signed {
		var trusted ed25519.PublicKey
		if *issuerKey != "" {
			trusted, err = signature.KeyFromString(*issuerKey)
			if err != nil {
				cf.Close()
				return 0, err
			}
		}
		var pub ed25519.PublicKey
		corpus, pub, err = signature.ReadSignedCorpus(cf, trusted)
		cf.Close()
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "issuer:      verified (%s)\n", signature.KeyToString(pub))
	} else {
		corpus, err = license.DecodeCorpus(cf)
		cf.Close()
		if err != nil {
			return 0, err
		}
	}

	isWAL, err := detectWAL(*logPath, *logBackend)
	if err != nil {
		return 0, err
	}
	if *repairLog && !isWAL {
		removed, err := logstore.RepairFile(*logPath)
		if err != nil {
			return 0, err
		}
		if removed > 0 {
			fmt.Fprintf(out, "repaired:    %s: truncated %d torn-tail bytes\n", *logPath, removed)
		}
	}
	log := logstore.NewMem(0)
	if isWAL {
		ws, err := wal.Open(*logPath, wal.Options{})
		if err != nil {
			return 0, err
		}
		rerr := ws.ForEach(log.Append)
		st := ws.RecoveryStats()
		if cerr := ws.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return 0, rerr
		}
		if st.TruncatedBytes > 0 {
			fmt.Fprintf(out, "repaired:    %s: truncated %d torn-tail bytes during recovery\n",
				*logPath, st.TruncatedBytes)
		}
	} else if err := logstore.ReadFile(*logPath, log.Append); err != nil {
		return 0, err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The root span covers auditor construction (tree build + replay +
	// division) and the validation walk; tracer nil makes Root a no-op.
	// flushTrace runs on every exit after the root ends — a trace of a
	// failed or deadline-cut audit is the one you want most.
	ctx, root := tracer.Root(ctx, "drmaudit.audit")
	slogger.DebugContext(ctx, "log loaded", "records", log.Len(), "wal", isWAL)
	flushTrace := func() error {
		if *tracePath == "" {
			return nil
		}
		if err := writeTraceFile(*tracePath, tracer); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(out, "trace:       wrote %s (Chrome Trace Event JSON; load in Perfetto)\n", *tracePath)
		}
		return nil
	}

	aud, err := core.NewAuditorContext(ctx, corpus, log)
	if err != nil {
		root.Fail(err)
		root.End()
		if ferr := flushTrace(); ferr != nil {
			slogger.Warn("trace write failed", "error", ferr)
		}
		return 0, err
	}
	aud.Workers = *workers
	rep, err := aud.AuditContext(ctx)
	partial := errors.Is(err, drmerr.ErrAuditIncomplete)
	if root != nil {
		root.SetInt("licenses", int64(corpus.Len()))
		root.SetInt("records", int64(log.Len()))
		root.SetInt("workers", int64(*workers))
		if err != nil && !partial {
			root.Fail(err)
		}
		root.End()
	}
	slogger.DebugContext(ctx, "audit finished",
		"partial", partial, "equations", rep.Equations, "violations", len(rep.Violations))
	if err != nil && !partial {
		if ferr := flushTrace(); ferr != nil {
			slogger.Warn("trace write failed", "error", ferr)
		}
		return 0, err
	}
	if err := flushTrace(); err != nil {
		return 0, err
	}

	if *statsPath != "" {
		if err := writeStats(*statsPath, aud.Stats()); err != nil {
			return 0, err
		}
		if !*jsonOut { // keep -json stdout a single document
			fmt.Fprintf(out, "stats:       wrote %s\n", *statsPath)
		}
	}

	if *jsonOut {
		return writeJSONReport(out, corpus, log, aud, rep, partial)
	}

	gr := aud.Grouping()
	tm := aud.Timings()
	fmt.Fprintf(out, "corpus:      %d licenses, %d log records\n", corpus.Len(), log.Len())
	fmt.Fprintf(out, "groups:      %d %v\n", gr.NumGroups(), gr)
	fmt.Fprintf(out, "equations:   %d grouped (vs %.0f undivided)\n",
		rep.Equations, core.FullEquationCount(corpus.Len()))
	fmt.Fprintf(out, "gain (eq 3): %.2fx theoretical\n", aud.Gain())
	fmt.Fprintf(out, "timings:     build C_T=%v  divide D_T=%v  validate V_T=%v\n",
		tm.Construction, tm.DT(), tm.Validation)

	if *compare {
		if corpus.Len() > *maxOriginal {
			fmt.Fprintf(out, "compare:     skipped (N=%d > max-original %d; 2^N equations)\n",
				corpus.Len(), *maxOriginal)
		} else {
			tree, err := vtree.Build(corpus.Len(), log)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			res, err := tree.ValidateAll(corpus.Aggregates())
			if err != nil {
				return 0, err
			}
			orig := time.Since(start)
			speedup := float64(orig) / float64(tm.Validation)
			fmt.Fprintf(out, "compare:     undivided V_T=%v over %d equations (%.1fx measured speed-up)\n",
				orig, res.Equations, speedup)
			if res.OK() != rep.OK() {
				return 0, fmt.Errorf("validators disagree: grouped OK=%v, undivided OK=%v", rep.OK(), res.OK())
			}
		}
	}

	if *forecastAx != "" {
		steps, err := forecast.Timeline(corpus, *forecastAx)
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(out, "forecast (expiry timeline):")
		tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "time\texpired\tactive\tgroups\tequations\tgain\tsplit\t")
		for _, st := range steps {
			split := ""
			if st.Split {
				split = "SPLIT"
			}
			fmt.Fprintf(tw, "%d\t%v\t%d\t%d\t%d\t%.1fx\t%s\t\n",
				st.Time, st.Expired, st.Active.Len(), len(st.Groups), st.Equations, st.Gain, split)
		}
		if err := tw.Flush(); err != nil {
			return 0, err
		}
	}

	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			return 0, err
		}
		adj := overlap.BuildAdjacency(corpus)
		names := make([]string, corpus.Len())
		for i := range names {
			names[i] = corpus.License(i).Name
		}
		if err := overlap.WriteDOT(df, adj, gr, names); err != nil {
			df.Close()
			return 0, err
		}
		if err := df.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "graph:       wrote %s\n", *dotPath)
	}

	if *compactLog {
		if isWAL {
			ws, err := wal.Open(*logPath, wal.Options{})
			if err != nil {
				return 0, err
			}
			info, err := ws.Snapshot()
			if cerr := ws.Close(); err == nil { // Close waits for segment retirement
				err = cerr
			}
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(out, "compacted:   %s: snapshot of %d records at seq %d\n",
				*logPath, info.Records, info.Seq)
		} else {
			before, after, err := logstore.CompactFile(*logPath)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(out, "compacted:   %s: %d -> %d records\n", *logPath, before, after)
		}
	}

	if *migrateWAL != "" {
		if err := migrateToWAL(*migrateWAL, log); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "migrated:    %d records -> %s (wal, snapshotted)\n", log.Len(), *migrateWAL)
	}

	if *capacity {
		capRep, err := core.Capacity(aud.Trees())
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(out, "capacity:")
		if err := capRep.Write(out); err != nil {
			return 0, err
		}
		cuts := overlap.CutLicenses(overlap.BuildAdjacency(corpus))
		if !cuts.Empty() {
			fmt.Fprintf(out, "cut licenses: %v — expiry of any of these splits its group and cheapens validation\n", cuts)
		}
	}

	if partial {
		fmt.Fprintf(out, "completeness: %d/%d groups fully checked before the deadline\n",
			rep.GroupsComplete(), len(rep.Completeness))
		for _, gc := range rep.Completeness {
			state := "complete"
			if !gc.Complete {
				state = "cut short"
			}
			fmt.Fprintf(out, "  group %d: %d/%d equations (%s)\n",
				gc.Group+1, gc.MasksScanned, gc.MasksTotal, state)
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
		fmt.Fprintf(out, "result:      INCOMPLETE — deadline expired; %d violations found so far (all real)\n",
			len(rep.Violations))
		return 3, nil
	}
	if rep.OK() {
		fmt.Fprintln(out, "result:      OK — no aggregate violations")
		return 0, nil
	}
	fmt.Fprintf(out, "result:      %d VIOLATED equations\n", len(rep.Violations))
	if *explain {
		exps, err := core.ExplainReport(aud.Trees(), rep)
		if err != nil {
			return 0, err
		}
		for _, e := range exps {
			fmt.Fprint(out, e)
		}
	} else {
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
	}
	return 2, nil
}

// detectWAL resolves the -log-backend flag against what exists at path:
// "auto" answers wal exactly when path is a directory.
func detectWAL(path, backend string) (bool, error) {
	switch backend {
	case "jsonl":
		return false, nil
	case "wal":
		return true, nil
	case "auto":
		fi, err := os.Stat(path)
		if err == nil && fi.IsDir() {
			return true, nil
		}
		return false, nil
	default:
		return false, fmt.Errorf("unknown log backend %q (want auto, jsonl, or wal)", backend)
	}
}

// migrateToWAL writes the in-memory log into a fresh WAL store at dir and
// snapshots it, so the first server open replays nothing. A non-empty
// target is refused — migration never merges histories.
func migrateToWAL(dir string, log *logstore.Mem) error {
	ws, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return err
	}
	if ws.Len() != 0 {
		ws.Close()
		return fmt.Errorf("refusing to migrate into non-empty WAL %s (%d records)", dir, ws.Len())
	}
	if err := ws.AppendBatch(log.Records()); err != nil {
		ws.Close()
		return err
	}
	if _, err := ws.Snapshot(); err != nil {
		ws.Close()
		return err
	}
	return ws.Close()
}

// writeTraceFile writes every retained trace (here: the one audit trace)
// as a Chrome Trace Event document.
func writeTraceFile(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStats writes the typed run-stats record to path.
func writeStats(path string, st obs.AuditStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonReport is the machine-readable audit document -json emits.
type jsonReport struct {
	Licenses   int      `json:"licenses"`
	LogRecords int      `json:"log_records"`
	Groups     [][]int  `json:"groups"` // one-based license numbers
	Equations  int64    `json:"equations"`
	Gain       float64  `json:"gain"`
	OK         bool     `json:"ok"`
	Violations []string `json:"violations,omitempty"`
	// Complete is false when -timeout cut the audit short; Completeness
	// then records the per-group scan progress.
	Complete     bool                     `json:"complete"`
	Completeness []core.GroupCompleteness `json:"completeness,omitempty"`
	TimingsNS    struct {
		Construction int64 `json:"construction"`
		Division     int64 `json:"division"`
		Validation   int64 `json:"validation"`
	} `json:"timings_ns"`
}

func writeJSONReport(out io.Writer, corpus *license.Corpus, log *logstore.Mem, aud *core.Auditor, rep core.Report, partial bool) (int, error) {
	doc := jsonReport{
		Licenses:   corpus.Len(),
		LogRecords: log.Len(),
		Equations:  rep.Equations,
		Gain:       aud.Gain(),
		OK:         rep.OK(),
		Complete:   rep.Complete(),
	}
	if partial {
		doc.Completeness = rep.Completeness
	}
	for _, g := range aud.Grouping().Groups {
		var ids []int
		g.Members.ForEach(func(j int) bool { ids = append(ids, j+1); return true })
		doc.Groups = append(doc.Groups, ids)
	}
	for _, v := range rep.Violations {
		doc.Violations = append(doc.Violations, v.String())
	}
	tm := aud.Timings()
	doc.TimingsNS.Construction = tm.Construction.Nanoseconds()
	doc.TimingsNS.Division = tm.DT().Nanoseconds()
	doc.TimingsNS.Validation = tm.Validation.Nanoseconds()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return 0, err
	}
	if partial {
		return 3, nil
	}
	if rep.OK() {
		return 0, nil
	}
	return 2, nil
}
