// Command drmgen generates a synthetic license corpus and issuance log in
// the paper's §5 style and writes them to disk for cmd/drmaudit and
// cmd/drmserver.
//
// Usage:
//
//	drmgen -n 20 -groups 4 -seed 7 -corpus corpus.json -log log.jsonl
//
// The corpus is a self-describing JSON document; the log is JSON lines of
// {set, count} records whose set masks refer to corpus indexes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/rel"
	"repro/internal/signature"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("drmgen", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 10, "number of redistribution licenses (1..64)")
		groups     = fs.Int("groups", 0, "planted group count (0 = paper's fig-6 curve)")
		dims       = fs.Int("dims", 4, "number of instance-based constraint axes")
		perLicense = fs.Int("records-per-license", 630, "log records per license (paper: ~630)")
		seed       = fs.Int64("seed", 1, "PRNG seed")
		corpusPath = fs.String("corpus", "corpus.json", "output path for the corpus document")
		logPath    = fs.String("log", "log.jsonl", "output path for the issuance log")
		relPath    = fs.String("rel", "", "also write the corpus in paper notation to this path")
		signedPath = fs.String("signed", "", "also write an Ed25519-signed corpus document to this path")
		keyPath    = fs.String("issuer-key", "", "write the issuer public key (base64) to this path (with -signed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := workload.Default(*n)
	cfg.Dims = *dims
	cfg.RecordsPerLicense = *perLicense
	cfg.Seed = *seed
	if *groups > 0 {
		cfg.Groups = *groups
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	cf, err := os.Create(*corpusPath)
	if err != nil {
		return err
	}
	if err := license.EncodeCorpus(cf, w.Corpus); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}

	lf, err := os.Create(*logPath)
	if err != nil {
		return err
	}
	if err := logstore.WriteAll(lf, w.Records); err != nil {
		lf.Close()
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}

	if *relPath != "" {
		dialect, err := rel.GenericDialect(w.Corpus.Schema(), nil)
		if err != nil {
			return err
		}
		rf, err := os.Create(*relPath)
		if err != nil {
			return err
		}
		for _, l := range w.Corpus.Licenses() {
			fmt.Fprintf(rf, "%s: %s\n", l.Name, dialect.FormatLicense(l))
		}
		if err := rf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: corpus in paper notation\n", *relPath)
	}

	if *signedPath != "" {
		pub, priv, err := signature.GenerateKey()
		if err != nil {
			return err
		}
		sf, err := os.Create(*signedPath)
		if err != nil {
			return err
		}
		if err := signature.WriteSignedCorpus(sf, w.Corpus, priv); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: signed corpus (issuer %s)\n", *signedPath, signature.KeyToString(pub))
		if *keyPath != "" {
			if err := os.WriteFile(*keyPath, []byte(signature.KeyToString(pub)+"\n"), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s: issuer public key\n", *keyPath)
		}
	}

	gr := overlap.GroupsOf(w.Corpus)
	fmt.Fprintf(out, "wrote %s: %d licenses over %d axes (%d groups planted, %d found)\n",
		*corpusPath, w.Corpus.Len(), cfg.Dims, cfg.Groups, gr.NumGroups())
	fmt.Fprintf(out, "wrote %s: %d issuance records\n", *logPath, len(w.Records))
	return nil
}
