package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/signature"
)

func TestRunWritesCorpusAndLog(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "c.json")
	logPath := filepath.Join(dir, "l.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-n", "8", "-groups", "3", "-seed", "7",
		"-records-per-license", "25",
		"-corpus", corpus, "-log", logPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "8 licenses") ||
		!strings.Contains(out.String(), "3 groups planted, 3 found") {
		t.Errorf("output = %q", out.String())
	}
	// The corpus file decodes.
	f, err := os.Open(corpus)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := license.DecodeCorpus(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 8 {
		t.Errorf("corpus len = %d", c.Len())
	}
	// The log replays with the right cardinality.
	count := 0
	if err := logstore.ReadFile(logPath, func(logstore.Record) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Errorf("log records = %d, want 200", count)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-n", "4", "-corpus", filepath.Join(t.TempDir(), "nodir", "x.json")}, &out); err == nil {
		t.Error("unwritable corpus path accepted")
	}
}

func TestRunWritesRelNotation(t *testing.T) {
	dir := t.TempDir()
	relPath := filepath.Join(dir, "c.rel")
	var out bytes.Buffer
	err := run([]string{
		"-n", "4", "-seed", "2", "-records-per-license", "5",
		"-corpus", filepath.Join(dir, "c.json"),
		"-log", filepath.Join(dir, "l.jsonl"),
		"-rel", relPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(relPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "L_D^1: (K; Play; C0=[") {
		t.Errorf("rel output = %q", s)
	}
	if got := strings.Count(s, "\n"); got != 4 {
		t.Errorf("rel lines = %d, want 4", got)
	}
}

func TestRunWritesSignedCorpus(t *testing.T) {
	dir := t.TempDir()
	signedPath := filepath.Join(dir, "c.signed")
	keyPath := filepath.Join(dir, "issuer.pub")
	var out bytes.Buffer
	err := run([]string{
		"-n", "4", "-seed", "2", "-records-per-license", "5",
		"-corpus", filepath.Join(dir, "c.json"),
		"-log", filepath.Join(dir, "l.jsonl"),
		"-signed", signedPath, "-issuer-key", keyPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	keyText, err := os.ReadFile(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := signature.KeyFromString(strings.TrimSpace(string(keyText)))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(signedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	corpus, _, err := signature.ReadSignedCorpus(sf, pub)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 4 {
		t.Errorf("corpus len = %d", corpus.Len())
	}
}
