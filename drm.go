// Package drm is the public API of the geometric license-validation
// library, a Go reproduction of "A Geometric Approach for Efficient
// Licenses Validation in DRM" (Sachan, Emmanuel, Kankanhalli, 2010).
//
// # Model
//
// A distributor holds N redistribution licenses for a content item. Every
// license carries M instance-based constraints — modelled as an
// M-dimensional hyper-rectangle over a Schema of interval axes (validity
// period, ...) and set axes (allowed regions, ...) — plus an aggregate
// permission-count budget. Newly issued licenses must be contained in at
// least one redistribution license's rectangle (instance validation), and
// for every subset S of the N licenses the issued counts attributable to S
// must not exceed S's combined budget (aggregate validation): 2^N−1
// validation equations.
//
// # The geometric shortcut
//
// Two licenses overlap iff their rectangles intersect on every axis.
// Connected components ("groups") of the overlap graph partition the
// corpus; no issued license can ever belong to two groups, so every
// equation spanning groups is redundant. The Auditor builds the validation
// tree from the issuance log, splits it per group, and validates
// Σ_k (2^{N_k}−1) equations instead — the paper's headline gain
// (eq. 3, computed by Gain).
//
// # Quick start
//
//	ex := drm.Example1()                     // the paper's running example
//	aud, _ := drm.NewAuditor(ex.Corpus, store)
//	report, _ := aud.Audit()                 // 10 equations instead of 31
//	fmt.Println(report.OK(), aud.Gain())     // true 3.1
//
// See examples/ for runnable end-to-end scenarios and cmd/ for the
// workload generator, offline auditor, benchmark harness, and HTTP
// validation service.
package drm

import (
	"context"
	"crypto/ed25519"
	"io"

	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/engine"
	"repro/internal/forecast"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/region"
	"repro/internal/rtree"
	"repro/internal/signature"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// Geometry: schemas, axes, rectangles.
type (
	// Schema fixes the ordered instance-constraint axes of a corpus.
	Schema = geometry.Schema
	// Axis describes one constraint dimension.
	Axis = geometry.Axis
	// Rect is a license's constraint hyper-rectangle.
	Rect = geometry.Rect
	// Value is one axis value (interval or categorical set).
	Value = geometry.Value
	// Interval is a closed [lo, hi] range over int64 coordinates.
	Interval = interval.Interval
	// Set is a categorical bitset (e.g. taxonomy leaf regions).
	Set = bitset.Set
	// Taxonomy is a hierarchical region universe.
	Taxonomy = region.Taxonomy
)

// Axis kinds.
const (
	KindInterval = geometry.KindInterval
	KindSet      = geometry.KindSet
)

// Licenses and corpora.
type (
	// License is a (K; P; I_1..I_M; A) tuple.
	License = license.License
	// Permission is the granted right P.
	Permission = license.Permission
	// Corpus is the distributor's ordered set of redistribution licenses.
	Corpus = license.Corpus
)

// License kinds and common permissions.
const (
	Redistribution = license.Redistribution
	Usage          = license.Usage

	Play       = license.Play
	Copy       = license.Copy
	Rip        = license.Rip
	Distribute = license.Distribute
)

// Logs and validation.
type (
	// Mask is a set of corpus indexes (the S of validation equations).
	Mask = bitset.Mask
	// Record is one issuance log row: belongs-to set plus count.
	Record = logstore.Record
	// LogStore is an append-only issuance log.
	LogStore = logstore.Store
	// MemLog is the in-memory log store.
	MemLog = logstore.Mem
	// FileLog is the JSONL-backed durable log store.
	FileLog = logstore.File
	// ValidationTree is the prefix tree of [10] over log records.
	ValidationTree = vtree.Tree
	// Violation is one failed validation equation.
	Violation = vtree.Violation
	// Result summarises a single-tree validation run.
	Result = vtree.Result
	// Grouping is the partition of a corpus into disconnected groups.
	Grouping = overlap.Grouping
	// GroupTree is one divided per-group validation tree.
	GroupTree = core.GroupTree
	// Report is the merged outcome of a grouped validation run.
	Report = core.Report
	// GroupCompleteness records how much of one group a deadline-bounded
	// audit actually scanned.
	GroupCompleteness = core.GroupCompleteness
	// Auditor runs the full offline pipeline: log → tree → groups →
	// divided trees → per-group validation.
	Auditor = core.Auditor
	// Timings breaks an audit into the paper's C_T, D_T, V_T stages.
	Timings = core.Timings
)

// Distribution engine.
type (
	// Distributor manages one (content, permission) corpus: instance
	// validation, issuance, logging, auditing.
	Distributor = engine.Distributor
	// Network is a directory of distributors.
	Network = engine.Network
	// SpatialIndex is an R-tree over license rectangles.
	SpatialIndex = rtree.Tree
)

// Engine modes and sentinel errors.
const (
	ModeOffline = engine.ModeOffline
	ModeOnline  = engine.ModeOnline
)

var (
	// ErrInstanceInvalid marks issuances outside every license rectangle.
	ErrInstanceInvalid = engine.ErrInstanceInvalid
	// ErrAggregateExhausted marks online-mode aggregate rejections.
	ErrAggregateExhausted = engine.ErrAggregateExhausted
)

// Typed error taxonomy (internal/drmerr). Match with errors.Is against
// the sentinels, or classify with ErrorKind for mechanical dispatch.
type (
	// ErrorKind classifies a pipeline failure (violation, corpus
	// mismatch, cancelled, incomplete, ...).
	ErrorKind = drmerr.Kind
)

// Error kinds.
const (
	KindViolation       = drmerr.KindViolation
	KindInstanceInvalid = drmerr.KindInstanceInvalid
	KindCorpusMismatch  = drmerr.KindCorpusMismatch
	KindCrossGroup      = drmerr.KindCrossGroup
	KindStoreCorrupt    = drmerr.KindStoreCorrupt
	KindCancelled       = drmerr.KindCancelled
	KindIncomplete      = drmerr.KindIncomplete
	KindInvalidInput    = drmerr.KindInvalidInput
	KindNotFound        = drmerr.KindNotFound
)

var (
	// ErrAuditIncomplete matches audits cut short by a deadline or
	// cancellation; the verified-so-far Report accompanies the error and
	// Report.Completeness records which groups finished.
	ErrAuditIncomplete = drmerr.ErrAuditIncomplete
	// ErrCancelled matches work abandoned on context cancellation before
	// any partial result was worth returning.
	ErrCancelled = drmerr.ErrCancelled
	// ErrViolation matches aggregate-constraint violations.
	ErrViolation = drmerr.ErrViolation
	// ErrCrossGroup matches log records whose belongs-to set spans
	// overlap groups (impossible under Corollary 1.1 — corrupt log).
	ErrCrossGroup = drmerr.ErrCrossGroup
	// ErrCorpusMismatch matches corpus/grouping/aggregate shape
	// mismatches.
	ErrCorpusMismatch = drmerr.ErrCorpusMismatch
	// ErrStoreCorrupt matches undecodable or invalid persisted state.
	ErrStoreCorrupt = drmerr.ErrStoreCorrupt
	// ErrNotFound matches missing-entity lookups.
	ErrNotFound = drmerr.ErrNotFound
)

// ErrorKindOf returns the kind of the outermost classified error in err's
// chain (KindUnknown for errors outside the taxonomy).
func ErrorKindOf(err error) ErrorKind { return drmerr.KindOf(err) }

// ErrorHTTPStatus maps a pipeline error to the HTTP status the validation
// service uses for it (409 violation, 422 model errors, 499 cancelled,
// 503 store corrupt, 504 incomplete, ...).
func ErrorHTTPStatus(err error) int { return drmerr.HTTPStatus(err) }

// Workloads.
type (
	// WorkloadConfig parameterises the §5 synthetic generator.
	WorkloadConfig = workload.Config
	// Workload is a generated corpus plus issuance log.
	Workload = workload.Workload
)

// Example1 returns the paper's running example (5 licenses, Table 2 log).
func Example1() *license.Example1 { return license.NewExample1() }

// World returns the default region taxonomy used by the examples.
func World() *Taxonomy { return region.World() }

// NewSchema builds a constraint schema; see geometry.NewSchema.
func NewSchema(axes ...Axis) (*Schema, error) { return geometry.NewSchema(axes...) }

// NewRect builds a constraint rectangle over a schema.
func NewRect(s *Schema, vals ...Value) (Rect, error) { return geometry.NewRect(s, vals...) }

// IntervalValue wraps an interval as an axis value.
func IntervalValue(iv Interval) Value { return geometry.IntervalValue(iv) }

// SetValue wraps a categorical set as an axis value.
func SetValue(s Set) Value { return geometry.SetValue(s) }

// NewInterval returns the closed interval [lo, hi].
func NewInterval(lo, hi int64) Interval { return interval.New(lo, hi) }

// DateRange parses a dd/mm/yy validity period into an interval.
func DateRange(from, to string) (Interval, error) { return interval.DateRange(from, to) }

// NewCorpus creates an empty redistribution-license corpus.
func NewCorpus(s *Schema) *Corpus { return license.NewCorpus(s) }

// NewMemLog returns an in-memory issuance log.
func NewMemLog() *MemLog { return logstore.NewMem(0) }

// OpenFileLog opens (creating if needed) a durable JSONL issuance log.
func OpenFileLog(path string) (*FileLog, error) { return logstore.OpenFile(path) }

// EncodeCorpus writes a corpus as a self-describing JSON document.
func EncodeCorpus(w io.Writer, c *Corpus) error { return license.EncodeCorpus(w, c) }

// DecodeCorpus reads a corpus document written by EncodeCorpus.
func DecodeCorpus(r io.Reader) (*Corpus, error) { return license.DecodeCorpus(r) }

// GroupsOf computes the disconnected groups of a corpus (Algorithm 3 over
// the overlap graph).
func GroupsOf(c *Corpus) Grouping { return overlap.GroupsOf(c) }

// Gain computes the paper's eq. 3 for a grouping.
func Gain(g Grouping) float64 { return core.Gain(g) }

// NewAuditor prepares the grouped offline validator for a corpus and log.
func NewAuditor(c *Corpus, log LogStore) (*Auditor, error) { return core.NewAuditor(c, log) }

// NewAuditorContext is NewAuditor with a cancellable log replay: the
// dominant preparation cost on huge logs can be abandoned early.
func NewAuditorContext(ctx context.Context, c *Corpus, log LogStore) (*Auditor, error) {
	return core.NewAuditorContext(ctx, c, log)
}

// NewDistributor creates a distribution endpoint for one (content,
// permission) corpus.
func NewDistributor(name string, s *Schema, mode engine.Mode, log LogStore) *Distributor {
	return engine.NewDistributor(name, s, mode, log)
}

// NewNetwork creates a distributor directory.
func NewNetwork(s *Schema, mode engine.Mode) *Network { return engine.NewNetwork(s, mode) }

// GenerateWorkload builds a §5-style synthetic corpus and log.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) { return workload.Generate(cfg) }

// DefaultWorkload returns the paper's §5 configuration for N licenses.
func DefaultWorkload(n int) WorkloadConfig { return workload.Default(n) }

// NewEquationAllocator returns the loss-free online issuance policy backed
// by validation-equation headroom.
func NewEquationAllocator(aggregates []int64) (*baseline.EquationAllocator, error) {
	return baseline.NewEquationAllocator(aggregates)
}

// Operations and extensions beyond the paper.
type (
	// IncrementalAuditor maintains divided trees as records stream in.
	IncrementalAuditor = core.IncrementalAuditor
	// Explanation decomposes one validation equation into contributions
	// and budgets.
	Explanation = core.Explanation
	// CapacityReport summarises per-license headrooms and group
	// utilization.
	CapacityReport = core.CapacityReport
	// GroupPlan is the validation planner's per-group strategy choice.
	GroupPlan = core.GroupPlan
	// Catalog is a persistent multi-content corpus store.
	Catalog = catalog.Catalog
	// CatalogEntry is one (content, permission) corpus in a catalog.
	CatalogEntry = catalog.Entry
)

// Validation strategies the planner chooses among.
const (
	StrategyTree   = core.StrategyTree
	StrategySOS    = core.StrategySOS
	StrategyDirect = core.StrategyDirect
)

// NewIncrementalAuditor prepares streaming divided trees for the corpus.
func NewIncrementalAuditor(c *Corpus) (*IncrementalAuditor, error) {
	return core.NewIncrementalAuditor(c)
}

// Explain decomposes the validation equation for a (single-group) set.
func Explain(trees []*GroupTree, set Mask) (Explanation, error) {
	return core.Explain(trees, set)
}

// ExplainReport explains every violation in a report.
func ExplainReport(trees []*GroupTree, rep Report) ([]Explanation, error) {
	return core.ExplainReport(trees, rep)
}

// Capacity computes per-license headrooms and group utilization.
func Capacity(trees []*GroupTree) (CapacityReport, error) {
	return core.Capacity(trees)
}

// PlanValidation chooses an evaluation strategy per group.
func PlanValidation(trees []*GroupTree) []GroupPlan { return core.Plan(trees) }

// ValidateWithPlan evaluates each group with its planned strategy.
func ValidateWithPlan(trees []*GroupTree, plans []GroupPlan) (Report, error) {
	return core.ValidateWithPlan(trees, plans)
}

// OpenCatalog loads (creating if needed) a multi-content corpus directory.
func OpenCatalog(dir string, mode engine.Mode) (*Catalog, error) {
	return catalog.Open(dir, mode)
}

// ForecastStep is one point of an expiry timeline: the validation plan
// after a wave of license expiries.
type ForecastStep = forecast.Step

// ExpiryTimeline projects groups, equation counts, and gain across license
// expiries along the named interval axis.
func ExpiryTimeline(c *Corpus, axis string) ([]ForecastStep, error) {
	return forecast.Timeline(c, axis)
}

// CutLicenses returns the licenses whose expiry or revocation would split
// their overlap group (making validation strictly cheaper).
func CutLicenses(c *Corpus) Mask {
	return overlap.CutLicenses(overlap.BuildAdjacency(c))
}

// License integrity (Ed25519 over canonical license bytes).
var (
	// ErrBadSignature marks failed license or corpus verification.
	ErrBadSignature = signature.ErrBadSignature
)

// GenerateIssuerKey creates an Ed25519 key pair for a license issuer.
func GenerateIssuerKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return signature.GenerateKey()
}

// SignLicense signs the license's canonical bytes.
func SignLicense(l *License, priv ed25519.PrivateKey) ([]byte, error) {
	return signature.Sign(l, priv)
}

// VerifyLicense checks an issuer signature over a license.
func VerifyLicense(l *License, pub ed25519.PublicKey, sig []byte) error {
	return signature.Verify(l, pub, sig)
}

// WriteSignedCorpus writes a corpus document signed by the issuer.
func WriteSignedCorpus(w io.Writer, c *Corpus, priv ed25519.PrivateKey) error {
	return signature.WriteSignedCorpus(w, c, priv)
}

// ReadSignedCorpus verifies and decodes a signed corpus document; a nil
// trusted key means trust-on-first-use (the embedded key is returned for
// pinning).
func ReadSignedCorpus(r io.Reader, trusted ed25519.PublicKey) (*Corpus, ed25519.PublicKey, error) {
	return signature.ReadSignedCorpus(r, trusted)
}
