// Audit demonstrates the offline batch-validation pipeline at the paper's
// evaluation scale (§5): generate a synthetic corpus and a large issuance
// log, persist both to disk in the tool formats, reload them cold, and run
// the geometric validator — reporting groups, equation counts, stage
// timings (C_T, D_T, V_T), and the measured speed-up over the undivided
// 2^N−1-equation validator.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	drm "repro"
	"repro/internal/logstore"
	"repro/internal/vtree"
)

func main() {
	dir, err := os.MkdirTemp("", "drm-audit-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate the paper's §5 workload for N=18 licenses.
	cfg := drm.DefaultWorkload(18)
	cfg.Seed = 11
	w, err := drm.GenerateWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d licenses (%d planted groups) and %d log records\n",
		w.Corpus.Len(), w.Config.Groups, len(w.Records))

	// Persist corpus + log the way a validation authority would receive
	// them from the field.
	corpusPath := filepath.Join(dir, "corpus.json")
	logPath := filepath.Join(dir, "log.jsonl")
	cf, err := os.Create(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := drm.EncodeCorpus(cf, w.Corpus); err != nil {
		log.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		log.Fatal(err)
	}
	lf, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := logstore.WriteAll(lf, w.Records); err != nil {
		log.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %s and %s\n\n", corpusPath, logPath)

	// Cold reload.
	cf2, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := drm.DecodeCorpus(cf2)
	cf2.Close()
	if err != nil {
		log.Fatal(err)
	}
	store := drm.NewMemLog()
	if err := logstore.ReadFile(logPath, store.Append); err != nil {
		log.Fatal(err)
	}

	// Grouped validation.
	auditor, err := drm.NewAuditor(corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	grouping := auditor.Grouping()
	timings := auditor.Timings()
	fmt.Println("== Geometric (grouped) validation ==")
	fmt.Printf("groups:    %v\n", grouping)
	fmt.Printf("equations: %d (undivided: %.0f)\n", report.Equations, float64(uint64(1)<<uint(corpus.Len())-1))
	fmt.Printf("timings:   C_T=%v  D_T=%v  V_T=%v\n", timings.Construction, timings.DT(), timings.Validation)
	fmt.Printf("verdict:   ok=%v (%d violations)\n\n", report.OK(), len(report.Violations))

	// Undivided baseline for the measured gain.
	tree, err := vtree.Build(corpus.Len(), store)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := tree.ValidateAll(corpus.Aggregates())
	if err != nil {
		log.Fatal(err)
	}
	original := time.Since(start)
	fmt.Println("== Undivided validation (the [10] baseline) ==")
	fmt.Printf("equations: %d\n", res.Equations)
	fmt.Printf("V_T:       %v\n\n", original)

	fmt.Printf("theoretical gain (eq 3): %.1fx\n", auditor.Gain())
	fmt.Printf("measured gain:           %.1fx\n", float64(original)/float64(timings.Validation))
	if res.OK() != report.OK() {
		log.Fatal("validators disagree — this is a bug")
	}
}
