// Multidistributor simulates the paper's distribution chain (§1): an owner
// grants regional redistribution licenses to two distributors; one
// distributor delegates part of its budget to a sub-distributor; consumers
// request usage licenses; the validation authority instance-validates
// every request, enforces aggregates online, and audits each corpus with
// the geometric validator.
//
// Run with: go run ./examples/multidistributor
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	drm "repro"
)

func main() {
	tax := drm.World()
	schema, err := drm.NewSchema(
		drm.Axis{Name: "period", Kind: drm.KindInterval},
		drm.Axis{Name: "region", Kind: drm.KindSet, Universe: tax.NumLeaves()},
	)
	if err != nil {
		log.Fatal(err)
	}
	rect := func(from, to string, regions ...string) drm.Rect {
		period, err := drm.DateRange(from, to)
		if err != nil {
			log.Fatal(err)
		}
		r, err := drm.NewRect(schema,
			drm.IntervalValue(period),
			drm.SetValue(tax.MustResolve(regions...)))
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	redistribution := func(name string, r drm.Rect, budget int64) *drm.License {
		return &drm.License{
			Name: name, Kind: drm.Redistribution, Content: "movie-42",
			Permission: drm.Play, Rect: r, Aggregate: budget,
		}
	}

	// The owner grants overlapping licenses to asia-media (two Asian
	// windows) and a disjoint American window to ameri-dist — so
	// asia-media's corpus will form one group per continent it covers.
	net := drm.NewNetwork(schema, drm.ModeOnline)
	fmt.Println("== Owner grants redistribution licenses ==")
	grants := []struct {
		distributor string
		l           *drm.License
	}{
		{"asia-media", redistribution("asia-q3", rect("01/07/26", "30/09/26", "Asia"), 5000)},
		{"asia-media", redistribution("asia-q4", rect("15/09/26", "31/12/26", "India", "Japan"), 3000)},
		{"asia-media", redistribution("america-q4", rect("01/10/26", "31/12/26", "America"), 4000)},
		{"ameri-dist", redistribution("america-h2", rect("01/07/26", "31/12/26", "America"), 8000)},
	}
	for _, g := range grants {
		if _, err := net.Grant(g.distributor, g.l); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s ← %s\n", g.distributor, g.l)
	}

	asia := net.Distributor("asia-media", "movie-42", drm.Play)
	fmt.Printf("\nasia-media's corpus has %d disconnected groups: %v\n",
		asia.NumGroups(), drm.GroupsOf(asia.Corpus()))

	// asia-media delegates 1200 counts of its Q3 Asian window to a
	// sub-distributor: a redistribution license issued like any other.
	fmt.Println("\n== asia-media delegates to a sub-distributor ==")
	subLicense, err := asia.Issue(drm.Redistribution, rect("01/08/26", "31/08/26", "India"), 1200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  issued %s\n", subLicense)
	sub := drm.NewDistributor("india-sub", schema, drm.ModeOnline, drm.NewMemLog())
	if _, err := sub.AddRedistribution(subLicense); err != nil {
		log.Fatal(err)
	}

	// Consumers hit both tiers with randomized requests.
	fmt.Println("\n== Consumer issuance traffic ==")
	rng := rand.New(rand.NewSource(7))
	consumers := []struct {
		name string
		d    *drm.Distributor
		r    drm.Rect
	}{
		{"asia-media/Japan-Sept", asia, rect("16/09/26", "20/09/26", "Japan")},
		{"asia-media/USA-Oct", asia, rect("05/10/26", "09/10/26", "USA")},
		{"india-sub/India-Aug", sub, rect("10/08/26", "12/08/26", "India")},
		{"asia-media/UK-invalid", asia, rect("05/10/26", "09/10/26", "UK")},
	}
	for round := 0; round < 200; round++ {
		c := consumers[rng.Intn(len(consumers))]
		_, err := c.d.Issue(drm.Usage, c.r, int64(10+rng.Intn(21)))
		switch {
		case errors.Is(err, drm.ErrInstanceInvalid), errors.Is(err, drm.ErrAggregateExhausted):
			// Counted in stats below.
		case err != nil:
			log.Fatal(err)
		}
	}
	for _, d := range []*drm.Distributor{asia, sub} {
		st := d.Stats()
		fmt.Printf("  %-11s issued=%d (%d counts)  rejected: instance=%d aggregate=%d\n",
			d.Name(), st.Issued, st.IssuedCounts, st.RejectedInstance, st.RejectedAggregate)
	}

	// The validation authority audits every corpus offline.
	fmt.Println("\n== Offline audits (geometric validator) ==")
	reports, err := net.AuditAll(2)
	if err != nil {
		log.Fatal(err)
	}
	for d, rep := range reports {
		fmt.Printf("  %-11s equations=%3d ok=%v\n", d.Name(), rep.Equations, rep.OK())
	}
	subRep, subAud, err := sub.Audit(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-11s equations=%3d ok=%v (gain %.1fx)\n",
		sub.Name(), subRep.Equations, subRep.OK(), subAud.Gain())
}
