// Remediation walks the violation-handling loop a validation authority
// runs after an offline audit flags a distributor: find the violated
// equations (geometric grouped validation), decompose each into its
// contributing issuances and budgets (core.Explain), apply the minimal
// budget top-up, and re-audit to a clean report.
//
// Run with: go run ./examples/remediation
package main

import (
	"fmt"
	"log"

	drm "repro"
	"repro/internal/core"
)

func main() {
	ex := drm.Example1()

	// An offline distributor over-issues against L_D^2: three 400-count
	// issuances that only L_D^2 (budget 1000) covers, on top of the joint
	// 800-count issuance.
	d := drm.NewDistributor("D1", ex.Schema, drm.ModeOffline, drm.NewMemLog())
	for _, l := range ex.Corpus.Licenses() {
		cp := *l
		if _, err := d.AddRedistribution(&cp); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := d.Issue(drm.Usage, ex.Usage1.Rect, 800); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Issue(drm.Usage, ex.Usage2.Rect, 400); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Audit finds the violations.
	report, auditor, err := d.Audit(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: %d equations, %d violated\n\n", report.Equations, len(report.Violations))

	// 2. Explain them: which issuances, which budgets, how much is missing.
	explanations, err := core.ExplainReport(auditor.Trees(), report)
	if err != nil {
		log.Fatal(err)
	}
	worstPerLicense := map[int]int64{}
	for _, e := range explanations {
		fmt.Print(e)
		// The minimal fix: raise any one member's budget by the deficit.
		// Attribute it to the smallest member license of each set.
		j := e.Set.Min()
		if e.Remediation() > worstPerLicense[j] {
			worstPerLicense[j] = e.Remediation()
		}
	}

	// 3. Top up and re-audit.
	fmt.Println("\nremediation:")
	for j, extra := range worstPerLicense {
		fmt.Printf("  top up %s by %d counts\n", d.Corpus().License(j).Name, extra)
		if err := d.TopUp(j, extra); err != nil {
			log.Fatal(err)
		}
	}
	report, _, err = d.Audit(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-audit: ok=%v (%d violations)\n", report.OK(), len(report.Violations))
	if !report.OK() {
		log.Fatal("remediation insufficient — this is a bug")
	}
}
