// Capacityplanning shows the operator analyses the validation equations
// make possible beyond auditing: how many more counts each license can
// still sell (equation headroom), which licenses hold expensive groups
// together (cut licenses), and how the validation plan relaxes as
// licenses expire (the forecast timeline).
//
// Run with: go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"os"

	drm "repro"
)

func main() {
	ex := drm.Example1()
	store := drm.NewMemLog()
	for _, e := range ex.Log {
		if err := store.Append(drm.Record{Set: e.Set, Count: e.Count}); err != nil {
			log.Fatal(err)
		}
	}
	auditor, err := drm.NewAuditor(ex.Corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := auditor.Audit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Capacity: headroom per license, utilization per group ==")
	capacity, err := drm.Capacity(auditor.Trees())
	if err != nil {
		log.Fatal(err)
	}
	if err := capacity.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Structural risk: cut licenses ==")
	cuts := drm.CutLicenses(ex.Corpus)
	fmt.Printf("licenses whose expiry splits their group: %v\n", cuts)
	fmt.Println("(splitting is good news for the validator: fewer, smaller equations)")

	fmt.Println("\n== Forecast: the validation plan across expiries ==")
	steps, err := drm.ExpiryTimeline(ex.Corpus, "period")
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range steps {
		marker := ""
		if st.Split {
			marker = "  <- group split"
		}
		fmt.Printf("t=%d  expired=%v  active=%d  groups=%d  equations=%d  gain=%.1fx%s\n",
			st.Time, st.Expired, st.Active.Len(), len(st.Groups), st.Equations, st.Gain, marker)
	}
	fmt.Println("\nAudit scheduling hint: the expensive audits are the early ones;")
	fmt.Println("after the first split the equation count drops from 10 to 5.")
}
