// Streaming demonstrates the fig-6 dynamics the paper discusses: as a
// distributor acquires redistribution licenses one at a time, the number
// of disconnected groups may stay, rise, or collapse — and each change
// moves the theoretical validation gain (eq 3). The engine tracks groups
// incrementally (union-find) so no acquisition recomputes from scratch.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	drm "repro"
)

func main() {
	tax := drm.World()
	schema, err := drm.NewSchema(
		drm.Axis{Name: "period", Kind: drm.KindInterval},
		drm.Axis{Name: "region", Kind: drm.KindSet, Universe: tax.NumLeaves()},
	)
	if err != nil {
		log.Fatal(err)
	}
	d := drm.NewDistributor("acquirer", schema, drm.ModeOffline, drm.NewMemLog())

	mk := func(name, from, to string, regions ...string) *drm.License {
		period, err := drm.DateRange(from, to)
		if err != nil {
			log.Fatal(err)
		}
		r, err := drm.NewRect(schema,
			drm.IntervalValue(period), drm.SetValue(tax.MustResolve(regions...)))
		if err != nil {
			log.Fatal(err)
		}
		return &drm.License{
			Name: name, Kind: drm.Redistribution, Content: "K",
			Permission: drm.Play, Rect: r, Aggregate: 1000,
		}
	}

	// The acquisition sequence is scripted to show all three fig-6 cases:
	// group count rising (disjoint license), staying (extends one group),
	// and collapsing (a license bridging two groups).
	acquisitions := []struct {
		l    *drm.License
		note string
	}{
		{mk("L1", "01/01/26", "31/01/26", "Asia"), "first license"},
		{mk("L2", "01/03/26", "31/03/26", "Europe"), "disjoint in time+region → new group"},
		{mk("L3", "15/01/26", "15/02/26", "India"), "overlaps L1 → joins its group"},
		{mk("L4", "01/06/26", "30/06/26", "America"), "disjoint → new group"},
		{mk("L5", "20/01/26", "20/03/26", "Asia", "Europe"), "bridges L1's and L2's groups → merge"},
	}
	fmt.Println("acquisition                                      groups  gain (eq 3)")
	for _, a := range acquisitions {
		if _, err := d.AddRedistribution(a.l); err != nil {
			log.Fatal(err)
		}
		grouping := drm.GroupsOf(d.Corpus())
		fmt.Printf("%-6s %-42s %2d     %8.1fx\n",
			a.l.Name, a.note, d.NumGroups(), drm.Gain(grouping))
		if d.NumGroups() != grouping.NumGroups() {
			log.Fatal("incremental and batch grouping disagree — this is a bug")
		}
	}

	fmt.Println("\nfinal grouping:", drm.GroupsOf(d.Corpus()))
	fmt.Println("\nEach merge makes validation costlier (bigger 2^{N_k} term);")
	fmt.Println("each split makes it cheaper. The auditor always re-derives the")
	fmt.Println("grouping from geometry, so acquisitions need no revalidation.")
}
