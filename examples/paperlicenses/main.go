// Paperlicenses shows the rights-expression mini-language: licenses are
// written exactly as the paper prints them — (K; Play; T=[...], R=[...];
// A=...) — parsed into a corpus, grouped geometrically, and audited. The
// corpus below is Example 1 verbatim plus a sixth license that bridges the
// two groups, demonstrating how acquisition reshapes the validation plan.
//
// Run with: go run ./examples/paperlicenses
package main

import (
	"fmt"
	"log"
	"strings"

	drm "repro"
	"repro/internal/rel"
)

const corpusSource = `
# Example 1 of Sachan, Emmanuel, Kankanhalli (2010), verbatim.
L_D^1: (K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)
L_D^2: (K; Play; T=[15/03/09, 25/03/09], R=[Asia];         A=1000)
L_D^3: (K; Play; T=[15/03/09, 30/03/09], R=[America];      A=3000)
L_D^4: (K; Play; T=[15/03/09, 15/04/09], R=[Europe];       A=4000)
L_D^5: (K; Play; T=[25/03/09, 10/04/09], R=[America];      A=2000)
`

// bridge overlaps both continents' groups (period spans both windows,
// region spans Europe and America), collapsing them into one.
const bridge = `(K; Play; T=[18/03/09, 05/04/09], R=[Europe, America]; A=1500)`

func main() {
	dialect, _, err := rel.PaperDialect(drm.World())
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := dialect.ParseCorpus(strings.NewReader(corpusSource))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Parsed corpus (round-tripped through the notation) ==")
	for _, l := range corpus.Licenses() {
		fmt.Printf("  %s: %s\n", l.Name, dialect.FormatLicense(l))
	}

	grouping := drm.GroupsOf(corpus)
	fmt.Printf("\ngroups: %v   gain: %.1fx\n", grouping, drm.Gain(grouping))

	// Issue some usage licenses in notation form too, and audit.
	store := drm.NewMemLog()
	usages := []string{
		"(K; Play; T=[15/03/09, 19/03/09], R=[India]; A=800)", // L_U^1
		"(K; Play; T=[21/03/09, 24/03/09], R=[Japan]; A=400)", // L_U^2
		"(K; Play; T=[26/03/09, 28/03/09], R=[USA];   A=500)",
	}
	fmt.Println("\n== Issuances ==")
	for i, expr := range usages {
		u, err := dialect.ParseLicense(fmt.Sprintf("L_U^%d", i+1), drm.Usage, expr)
		if err != nil {
			log.Fatal(err)
		}
		belongs := corpus.BelongsTo(u.Rect)
		if len(belongs) == 0 {
			fmt.Printf("  %s: instance-INVALID\n", u.Name)
			continue
		}
		var set drm.Mask
		names := make([]string, 0, len(belongs))
		for _, j := range belongs {
			set = set.With(j)
			names = append(names, corpus.License(j).Name)
		}
		if err := store.Append(drm.Record{Set: set, Count: u.Aggregate}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d counts, belongs to %v\n", u.Name, u.Aggregate, names)
	}
	auditor, err := drm.NewAuditor(corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit: %d equations, ok=%v\n", report.Equations, report.OK())

	// Acquire the bridging license and show the validation plan reshaping.
	l6, err := dialect.ParseLicense("L_D^6", drm.Redistribution, bridge)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := corpus.Add(l6); err != nil {
		log.Fatal(err)
	}
	grouping = drm.GroupsOf(corpus)
	fmt.Printf("\nafter acquiring L_D^6 = %s\n", dialect.FormatLicense(l6))
	fmt.Printf("groups: %v   gain: %.1fx (merge made validation costlier)\n",
		grouping, drm.Gain(grouping))
}
