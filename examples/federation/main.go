// Federation demonstrates distributed validation authorities: two
// authorities each observe a disjoint slice of the issuance stream for the
// same corpus, build their own validation trees, and later merge them for
// a joint geometric audit. Merging trees is exact — the combined tree
// equals the tree a single authority would have built — so audits can be
// sharded by observation point without losing soundness.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand"

	drm "repro"
	"repro/internal/core"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

func main() {
	// A mid-size synthetic corpus with planted structure.
	cfg := drm.DefaultWorkload(14)
	cfg.Seed = 21
	cfg.RecordsPerLicense = 400
	w, err := drm.GenerateWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := w.Corpus.Len()

	// Split the stream between two authorities (e.g. by consumer region).
	rng := rand.New(rand.NewSource(5))
	east, err := vtree.New(n)
	if err != nil {
		log.Fatal(err)
	}
	west, err := vtree.New(n)
	if err != nil {
		log.Fatal(err)
	}
	eastN, westN := 0, 0
	for _, r := range w.Records {
		if rng.Intn(2) == 0 {
			if err := east.Insert(r.Set, r.Count); err != nil {
				log.Fatal(err)
			}
			eastN++
		} else {
			if err := west.Insert(r.Set, r.Count); err != nil {
				log.Fatal(err)
			}
			westN++
		}
	}
	fmt.Printf("authority east observed %d issuances, west %d\n", eastN, westN)

	// Joint audit: merge west into east, divide, validate.
	if err := east.Merge(west); err != nil {
		log.Fatal(err)
	}
	grouping := overlap.GroupsOf(w.Corpus)
	trees, err := core.Divide(east, grouping, w.Corpus.Aggregates())
	if err != nil {
		log.Fatal(err)
	}
	merged, err := core.Validate(trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged audit: %d groups, %d equations, ok=%v\n",
		grouping.NumGroups(), merged.Equations, merged.OK())

	// Cross-check against a single authority that saw everything.
	store := drm.NewMemLog()
	for _, r := range w.Records {
		if err := store.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	auditor, err := drm.NewAuditor(w.Corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	single, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single audit: %d equations, ok=%v\n", single.Equations, single.OK())
	if merged.Equations != single.Equations || len(merged.Violations) != len(single.Violations) {
		log.Fatal("federated and single-authority audits disagree — this is a bug")
	}
	fmt.Println("federated audit matches the single-authority audit exactly")
}
