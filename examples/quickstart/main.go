// Quickstart walks the paper's running example (Example 1, Table 2,
// figs 1–5) end-to-end through the public API:
//
//  1. five redistribution licenses with period + region constraints;
//  2. instance validation of two usage licenses (who belongs where);
//  3. the Table 2 issuance log and its validation tree;
//  4. overlap grouping, tree division, and grouped aggregate validation —
//     10 equations instead of 31, the paper's 3.1x gain;
//  5. the Example 1 pitfall: why picking one license at random loses
//     revenue that the equation-based validator preserves.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	drm "repro"
)

func main() {
	ex := drm.Example1()

	fmt.Println("== The distributor's redistribution licenses (Example 1) ==")
	for i := 0; i < ex.Corpus.Len(); i++ {
		fmt.Printf("  %s\n", ex.Corpus.License(i))
	}

	fmt.Println("\n== Instance validation (hyper-rectangle containment, fig 2) ==")
	for _, u := range []*drm.License{ex.Usage1, ex.Usage2} {
		belongs := ex.Corpus.BelongsTo(u.Rect)
		names := make([]string, 0, len(belongs))
		for _, j := range belongs {
			names = append(names, ex.Corpus.License(j).Name)
		}
		fmt.Printf("  %s belongs to %v\n", u.Name, names)
	}

	fmt.Println("\n== Overlap groups (fig 3) ==")
	grouping := drm.GroupsOf(ex.Corpus)
	fmt.Printf("  %d groups: %v\n", grouping.NumGroups(), grouping)
	fmt.Printf("  theoretical gain (eq 3): %.1fx\n", drm.Gain(grouping))

	fmt.Println("\n== Offline aggregate validation over the Table 2 log ==")
	store := drm.NewMemLog()
	for _, e := range ex.Log {
		if err := store.Append(drm.Record{Set: e.Set, Count: e.Count}); err != nil {
			log.Fatal(err)
		}
	}
	auditor, err := drm.NewAuditor(ex.Corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  evaluated %d equations (undivided would need 31)\n", report.Equations)
	fmt.Printf("  violations: %d — the Table 2 log is aggregate-valid\n", len(report.Violations))

	fmt.Println("\n== The Example 1 pitfall: random pick vs validation equations ==")
	agg := ex.Corpus.Aggregates()
	eq, err := drm.NewEquationAllocator(agg)
	if err != nil {
		log.Fatal(err)
	}
	// L_U^1: 800 counts, belongs to {L1, L2}; L_U^2: 400 counts, {L2} only.
	step := func(name string, set drm.Mask, count int64) {
		if err := eq.Allocate(set, count); err != nil {
			fmt.Printf("  equation validator REJECTED %s: %v\n", name, err)
		} else {
			fmt.Printf("  equation validator accepted %s (%d counts to %v)\n", name, count, set)
		}
	}
	step("L_U^1", drm.Mask(0b00011), 800)
	step("L_U^2", drm.Mask(0b00010), 400)
	fmt.Println("  (a validator that had randomly charged L_U^1 to L_D^2 would")
	fmt.Println("   have only 200 counts left and be forced to reject L_U^2)")
}
