package drm_test

import (
	"fmt"
	"log"

	drm "repro"
)

// Example reproduces the paper's headline numbers on its running example:
// the corpus divides into two groups, validation needs 10 equations
// instead of 31, and the theoretical gain is 3.1x.
func Example() {
	ex := drm.Example1()
	store := drm.NewMemLog()
	for _, e := range ex.Log {
		if err := store.Append(drm.Record{Set: e.Set, Count: e.Count}); err != nil {
			log.Fatal(err)
		}
	}
	auditor, err := drm.NewAuditor(ex.Corpus, store)
	if err != nil {
		log.Fatal(err)
	}
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("groups:", auditor.Grouping())
	fmt.Println("equations:", report.Equations)
	fmt.Printf("gain: %.1fx\n", auditor.Gain())
	fmt.Println("ok:", report.OK())
	// Output:
	// groups: [{1,2,4} {3,5}]
	// equations: 10
	// gain: 3.1x
	// ok: true
}

// ExampleGroupsOf shows the overlap grouping of fig 3: licenses overlap
// iff every constraint axis intersects, and groups are the connected
// components.
func ExampleGroupsOf() {
	ex := drm.Example1()
	grouping := drm.GroupsOf(ex.Corpus)
	fmt.Println(grouping.NumGroups(), grouping)
	// Output: 2 [{1,2,4} {3,5}]
}

// ExampleCorpus_BelongsTo runs instance-based validation: the issued
// license's hyper-rectangle must lie inside a redistribution license's.
func ExampleCorpus_BelongsTo() {
	ex := drm.Example1()
	for _, u := range []*drm.License{ex.Usage1, ex.Usage2} {
		indexes := ex.Corpus.BelongsTo(u.Rect)
		names := make([]string, len(indexes))
		for i, j := range indexes {
			names[i] = ex.Corpus.License(j).Name
		}
		fmt.Println(u.Name, "->", names)
	}
	// Output:
	// L_U^1 -> [L_D^1 L_D^2]
	// L_U^2 -> [L_D^2]
}

// ExampleNewDistributor drives the online engine: instance validation via
// the R-tree, aggregate enforcement via equation headroom.
func ExampleNewDistributor() {
	ex := drm.Example1()
	d := drm.NewDistributor("D1", ex.Schema, drm.ModeOnline, drm.NewMemLog())
	for _, l := range ex.Corpus.Licenses() {
		cp := *l
		if _, err := d.AddRedistribution(&cp); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := d.Issue(drm.Usage, ex.Usage1.Rect, 800); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Issue(drm.Usage, ex.Usage2.Rect, 400); err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Println("issued:", st.Issued, "counts:", st.IssuedCounts)
	// Output: issued: 2 counts: 1200
}

// ExampleGain evaluates eq. 3 directly.
func ExampleGain() {
	grouping := drm.GroupsOf(drm.Example1().Corpus)
	fmt.Printf("%.1f\n", drm.Gain(grouping))
	// Output: 3.1
}
