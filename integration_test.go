package drm_test

import (
	"errors"
	"path/filepath"
	"testing"

	drm "repro"
)

// TestIntegrationPaperScale drives the whole stack at the paper's largest
// evaluation point (N = 35, ~22k log records) through the public facade:
// generation, auditing, planner equivalence, capacity, explanations, and
// the incremental auditor — one flow, every subsystem.
func TestIntegrationPaperScale(t *testing.T) {
	cfg := drm.DefaultWorkload(35)
	cfg.Seed = 4
	w, err := drm.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Records); got != 35*630 {
		t.Fatalf("records = %d", got)
	}

	// Batch audit.
	store := drm.NewMemLog()
	for _, r := range w.Records {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	aud, err := drm.NewAuditor(w.Corpus, store)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	grouping := aud.Grouping()
	if grouping.NumGroups() < 2 {
		t.Fatalf("groups = %d", grouping.NumGroups())
	}
	if drm.Gain(grouping) <= 1 {
		t.Errorf("gain = %v", drm.Gain(grouping))
	}

	// Planner equivalence at scale.
	planned, err := drm.ValidateWithPlan(aud.Trees(), drm.PlanValidation(aud.Trees()))
	if err != nil {
		t.Fatal(err)
	}
	if planned.Equations != rep.Equations || len(planned.Violations) != len(rep.Violations) {
		t.Errorf("planner diverges: %d/%d vs %d/%d",
			planned.Equations, len(planned.Violations), rep.Equations, len(rep.Violations))
	}

	// Incremental auditor equivalence at scale.
	ia, err := drm.NewIncrementalAuditor(w.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Records {
		if err := ia.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	incRep, err := ia.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if incRep.Equations != rep.Equations || len(incRep.Violations) != len(rep.Violations) {
		t.Errorf("incremental diverges: %+v vs %+v", incRep.Equations, rep.Equations)
	}

	// Capacity is consistent: every group's consumption matches C⟨S⟩ and
	// utilization is sane.
	capRep, err := drm.Capacity(aud.Trees())
	if err != nil {
		t.Fatal(err)
	}
	if len(capRep.Rows) != 35 || len(capRep.Groups) != grouping.NumGroups() {
		t.Fatalf("capacity shape: %d rows, %d groups", len(capRep.Rows), len(capRep.Groups))
	}
	var consumed int64
	for _, g := range capRep.Groups {
		consumed += g.Consumed
	}
	var logged int64
	for _, r := range w.Records {
		logged += r.Count
	}
	if consumed != logged {
		t.Errorf("capacity consumption %d != logged %d", consumed, logged)
	}

	// Explanations agree with every violation.
	exps, err := drm.ExplainReport(aud.Trees(), rep)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exps {
		if e.CV != rep.Violations[i].CV || e.AV != rep.Violations[i].AV {
			t.Errorf("explanation %d disagrees with violation", i)
		}
	}
}

// TestIntegrationCatalogLifecycle runs the persistent multi-content path
// through the facade: create a catalog, issue online, reopen, audit.
func TestIntegrationCatalogLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "catalog")
	cat, err := drm.OpenCatalog(dir, drm.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	ex := drm.Example1()
	entry, err := cat.Add(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Dist.Issue(drm.Usage, ex.Usage1.Rect, 800); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := drm.OpenCatalog(dir, drm.ModeOnline)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	entry2 := cat2.Get("K", drm.Play)
	if entry2 == nil {
		t.Fatal("entry lost across reopen")
	}
	// The reopened corpus carries its own decoded schema; rebuild L_U^1's
	// rectangle against it (same period, same India region).
	usage, err := drm.NewRect(entry2.Corpus.Schema(),
		drm.IntervalValue(ex.Usage1.Rect.Value(0).Interval()),
		drm.SetValue(drm.World().MustResolve("India")),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Headroom reflects the pre-restart issuance: the {L1,L2} equation has
	// 3000 − 800 = 2200 left, the {L2} equation 1000; issuing 2200 against
	// {L1,L2}-shaped usage still passes, one more unit fails.
	if _, err := entry2.Dist.Issue(drm.Usage, usage, 2200); err != nil {
		t.Fatalf("post-restart issuance rejected: %v", err)
	}
	if _, err := entry2.Dist.Issue(drm.Usage, usage, 1); !errors.Is(err, drm.ErrAggregateExhausted) {
		t.Errorf("expected exhaustion, got %v", err)
	}
	reports, err := cat2.AuditAll(2)
	if err != nil {
		t.Fatal(err)
	}
	for e, rep := range reports {
		if !rep.OK() {
			t.Errorf("(%s,%s) audit dirty: %v", e.Content, e.Permission, rep.Violations)
		}
	}
}
